"""Injection clients.

One client runs alongside each Setchain server (as in the paper's docker
containers) and adds elements to *its local server* at
``sending_rate / server_count`` elements per second for the configured
injection duration.

To keep the discrete-event simulation tractable at high rates, a client fires
on a coarse tick (default 100 ms) and performs all the adds due in that tick
at once; element timestamps still carry the tick time, which is the resolution
the paper's rolling 9-second throughput windows and second-scale latency CDFs
actually need.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..config import WorkloadConfig
from ..errors import ConfigurationError
from ..sim.process import PeriodicTask
from ..sim.scheduler import Simulator
from .elements import Element
from .generator import ArbitrumLikeGenerator, ElementSizeStats


class AddTarget(Protocol):
    """The slice of a Setchain server a client uses: the ``add`` operation.

    Targets may additionally expose ``add_many(elements)``; clients use it
    for whole-tick injection bursts when present.
    """

    def add(self, element: Element) -> None: ...  # pragma: no cover - protocol


class RoutedTarget:
    """An :class:`AddTarget` that routes each element to its owning shard.

    One exists per client in a sharded deployment, remembering the client's
    index: client *i* prefers the server at position ``i % shard_size``
    within whichever shard an element hashes to, mirroring the unsharded
    one-client-per-server affinity.  Elements whose shard has no routable
    server are dropped (the router counts them rejected) — the client-side
    equivalent of an add against a downed host failing.
    """

    def __init__(self, router, preference: int) -> None:  # type: ignore[no-untyped-def]
        self.router = router
        self.preference = preference

    def add(self, element: Element) -> bool:
        routed = self.router.route(element.element_id, self.preference)
        if routed is None:
            return False
        server, _shard = routed
        return server.add(element)

    def add_many(self, elements: list[Element]) -> int:
        route = self.router.route
        preference = self.preference
        by_server: dict[str, tuple[object, list[Element]]] = {}
        for element in elements:
            routed = route(element.element_id, preference)
            if routed is None:
                continue
            server, _shard = routed
            bucket = by_server.get(server.name)
            if bucket is None:
                by_server[server.name] = (server, [element])
            else:
                bucket[1].append(element)
        accepted = 0
        for server, batch in by_server.values():
            accepted += server.add_many(batch)  # type: ignore[attr-defined]
        return accepted


class InjectionClient:
    """A single client adding elements to one server at a fixed rate."""

    def __init__(self, name: str, sim: Simulator, target: AddTarget,
                 rate: float, duration: float,
                 generator: ArbitrumLikeGenerator,
                 tick: float = 0.1,
                 on_element: Callable[[Element], None] | None = None,
                 on_elements: Callable[[list[Element]], None] | None = None) -> None:
        if rate <= 0 or duration <= 0 or tick <= 0:
            raise ConfigurationError("client rate, duration and tick must be positive")
        self.name = name
        self.sim = sim
        self.target = target
        self.rate = rate
        self.duration = duration
        self.generator = generator
        self.tick = tick
        self.on_element = on_element
        #: Batch observer for a whole tick's elements; preferred over
        #: ``on_element`` when both are set.
        self.on_elements = on_elements
        #: The target's batched add, when it has one.
        self._add_many = getattr(target, "add_many", None)
        self.sent = 0
        self._start_time: float | None = None
        self._carry = 0.0
        self._task = PeriodicTask(sim, tick, self._on_tick, offset=tick)

    def start(self) -> None:
        """Begin injecting at the current simulated time."""
        self._start_time = self.sim.now
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    @property
    def finished(self) -> bool:
        """True once the injection window has elapsed."""
        return (self._start_time is not None
                and self.sim.now >= self._start_time + self.duration)

    def _on_tick(self) -> None:
        assert self._start_time is not None
        elapsed = self.sim.now - self._start_time
        if elapsed > self.duration + 1e-9:
            self._task.stop()
            return
        # Number of elements due this tick, carrying fractional remainders so
        # the long-run rate is exact even when rate * tick is not an integer.
        due = self.rate * self.tick + self._carry
        count = int(due)
        self._carry = due - count
        if count <= 0:
            return
        # The whole tick's burst in three columnar passes: generate, observe,
        # add.  Every element carries the tick timestamp either way, and the
        # observers/targets record first observations per element, so the
        # reordering relative to per-element interleaving is unobservable.
        elements = self.generator.batch(self.name, count, now=self.sim.now)
        if self.on_elements is not None:
            self.on_elements(elements)
        elif self.on_element is not None:
            on_element = self.on_element
            for element in elements:
                on_element(element)
        add_many = self._add_many
        if add_many is not None:
            add_many(elements)
        else:
            add = self.target.add
            for element in elements:
                add(element)
        self.sent += count


class ClientPool:
    """One client per server, splitting the aggregate sending rate evenly."""

    def __init__(self, sim: Simulator, targets: list[AddTarget],
                 workload: WorkloadConfig,
                 on_element: Callable[[Element], None] | None = None,
                 tick: float = 0.1,
                 on_elements: Callable[[list[Element]], None] | None = None,
                 router=None) -> None:  # type: ignore[no-untyped-def]
        if not targets:
            raise ConfigurationError("need at least one injection target")
        self.sim = sim
        self.workload = workload
        self.router = router
        per_client_rate = workload.sending_rate / len(targets)
        stats = ElementSizeStats(workload.element_size_mean, workload.element_size_std)
        self.clients: list[InjectionClient] = []
        for index, target in enumerate(targets):
            rng = sim.rng.derive("client", index, workload.seed)
            generator = ArbitrumLikeGenerator(rng, stats)
            if router is not None:
                # Sharded: same client count, rates, and RNG streams as the
                # unsharded layout — only the add path goes through the
                # shard router instead of the pinned local server.
                target = RoutedTarget(router, index)
            client = InjectionClient(
                name=f"client-{index}", sim=sim, target=target,
                rate=per_client_rate, duration=workload.injection_duration,
                generator=generator, tick=tick, on_element=on_element,
                on_elements=on_elements)
            self.clients.append(client)

    def start(self) -> None:
        for client in self.clients:
            client.start()

    def stop(self) -> None:
        for client in self.clients:
            client.stop()

    @property
    def total_sent(self) -> int:
        return sum(client.sent for client in self.clients)

    @property
    def all_finished(self) -> bool:
        return all(client.finished for client in self.clients)
