"""The fault injector: executes a schedule against a live deployment.

:class:`FaultInjector` is armed by :meth:`Deployment.start`: it schedules one
simulator timer per event at its ``at`` time and hands events a
:class:`FaultContext` — the narrow surface they act through (network hooks,
crash/recover dispatch, target resolution, a derived RNG stream, and the
fault-event record on the metrics collector).  All randomness comes from
``sim.rng.derive("faults")``, so the same ``(scenario, seed)`` produces the
same chaos timeline in any process — ``sweep --jobs 1`` and ``--jobs 4`` stay
byte-identical.

After a run, :meth:`FaultInjector.report` condenses the applied timeline plus
the metrics collector into the resilience block serialised as
``RunResult.faults``: per-window availability, commit latency during/outside
fault windows, recovery time to the first post-heal commit, and the network's
dropped/duplicated counters.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Callable

from ..errors import ConfigurationError, did_you_mean
from .events import Targets
from .schedule import FaultScheduleConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.deployment import Deployment
    from ..net.message import Message
    from ..net.network import Network
    from ..sim.rng import DeterministicRNG
    from ..sim.scheduler import Simulator


class FaultContext:
    """What a fault event may touch while applying itself."""

    def __init__(self, deployment: "Deployment",
                 rng: "DeterministicRNG",
                 injector: "FaultInjector") -> None:
        self.deployment = deployment
        self.sim: "Simulator" = deployment.sim
        self.network: "Network" = deployment.network
        self.rng = rng
        self._injector = injector
        #: node name -> claim token of the crash event that owns it.
        self._crash_claims: dict[str, int] = {}
        #: server name -> claim token of the Byzantine event that owns it.
        self._byz_claims: dict[str, int] = {}
        self._claim_counter = 0
        #: normalised cut -> reference count (overlapping Partition events
        #: share Network's idempotent cut; the last release heals it).
        self._partition_claims: dict[frozenset[frozenset[str]], int] = {}

    # -- node pools -------------------------------------------------------------

    def server_names(self) -> list[str]:
        return [server.name for server in self.deployment.servers]

    def validator_names(self) -> list[str]:
        nodes = getattr(self.deployment.ledger_backend, "nodes", None)
        return sorted(nodes) if nodes else []

    def all_nodes(self) -> list[str]:
        """Every process on the simulated network (servers + ledger nodes)."""
        return self.network.node_names()

    def region_of(self, name: str) -> str | None:
        """Region of a node: servers from the deployment map, ledger nodes
        from the regional latency model's co-location map when present."""
        latency = self.network.latency
        region_map = getattr(latency, "region_of", None)
        if region_map and name in region_map:
            return region_map[name]
        return self.deployment.region_of.get(name)

    # -- target resolution -------------------------------------------------------

    def resolve(self, targets: Targets | None) -> list[str]:
        """Deterministically resolve a selector to sorted node names."""
        if targets is None:
            return []
        if targets.nodes:
            known = set(self.all_nodes())
            for name in targets.nodes:
                if name not in known:
                    raise ConfigurationError(
                        f"fault targets unknown node {name!r}"
                        + did_you_mean(name, sorted(known)))
            names = list(targets.nodes)
        else:
            if targets.role == "servers":
                names = self.server_names()
            elif targets.role == "validators":
                names = self.validator_names()
            else:
                names = self.all_nodes()
            if targets.region is not None:
                names = [name for name in names
                         if self.region_of(name) == targets.region]
        if targets.count is not None and targets.count < len(names):
            names = self.sample(names, targets.count)
        return sorted(names)

    def sample(self, pool: list[str], k: int) -> list[str]:
        """A deterministic random ``k``-subset of ``pool``."""
        if k >= len(pool):
            return sorted(pool)
        return sorted(self.rng.sample(sorted(pool), k))

    def name_matcher(self, names: list[str] | None) -> "Callable[[Message], bool]":
        """A message predicate: sender or recipient is in ``names``
        (``None`` matches every message).  Callers resolve selectors once and
        pass the result, so the rule and the recorded targets can never see
        two different random draws."""
        if names is None:
            return lambda message: True
        matched = frozenset(names)
        return lambda message: (message.sender in matched
                                or message.recipient in matched)

    # -- crash/recover dispatch ---------------------------------------------------

    def crash_node(self, name: str) -> None:
        self.deployment.crash_node(name)

    def recover_node(self, name: str) -> None:
        self.deployment.recover_node(name)

    def is_crashed(self, name: str) -> bool:
        return self.deployment.node_crashed(name)

    def live(self, names: list[str]) -> list[str]:
        """Filter out nodes that are already crash-faulted.

        Crash-type events claim only nodes *they* bring down, so overlapping
        schedules never recover another event's victim ahead of its window.
        """
        return [name for name in names if not self.is_crashed(name)]

    def claim_crashes(self, names: list[str]) -> int:
        """Crash ``names`` under a fresh ownership token.

        The paired :meth:`release_crashes` recovers only the nodes this token
        still owns, so a scheduled auto-recover can never bring back a node
        that was explicitly recovered and then re-claimed by a later event.
        """
        self._claim_counter += 1
        token = self._claim_counter
        for name in names:
            self.crash_node(name)
            self._crash_claims[name] = token
        return token

    def release_crashes(self, names: list[str], token: int) -> None:
        """Recover the nodes in ``names`` still owned by ``token``."""
        for name in names:
            if self._crash_claims.get(name) == token:
                del self._crash_claims[name]
                self.recover_node(name)

    def force_recover(self, name: str) -> None:
        """Explicit recovery (the ``Recover`` event): clears any ownership."""
        self._crash_claims.pop(name, None)
        self.recover_node(name)

    # -- Byzantine behaviour dispatch ---------------------------------------------

    def is_server(self, name: str) -> bool:
        """Whether ``name`` is a Setchain server (Byzantine-capable)."""
        return any(server.name == name for server in self.deployment.servers)

    def is_byzantine(self, name: str) -> bool:
        return self.deployment.node_byzantine(name)

    def correct(self, names: list[str]) -> list[str]:
        """Filter out servers that are already Byzantine.

        Byzantine-type events claim only the servers *they* turned, mirroring
        the crash-claim discipline: overlapping schedules never revert another
        event's server ahead of its window.
        """
        return [name for name in names if not self.is_byzantine(name)]

    def claim_byzantine(self, names: list[str], behaviour: str) -> int:
        """Turn ``names`` Byzantine under a fresh ownership token."""
        self._claim_counter += 1
        token = self._claim_counter
        for name in names:
            self.deployment.become_byzantine(name, behaviour)
            self._byz_claims[name] = token
        self._injector.note_byzantine(names)
        return token

    def release_byzantine(self, names: list[str], token: int) -> None:
        """Revert the servers in ``names`` still owned by ``token``."""
        for name in names:
            if self._byz_claims.get(name) == token:
                del self._byz_claims[name]
                self.deployment.become_correct(name)

    def force_correct(self, name: str) -> None:
        """Explicit reversion (the ``BecomeCorrect`` event): clears ownership."""
        self._byz_claims.pop(name, None)
        if self.is_server(name):
            self.deployment.become_correct(name)

    # -- membership dispatch -------------------------------------------------------

    def join(self, node: str | None = None, role: str = "servers",
             region: str | None = None, algorithm: str | None = None) -> str:
        """Admit a new node; returns its (possibly auto-assigned) name."""
        if role == "validators":
            return self.deployment.add_validator(node)
        server = self.deployment.add_server(name=node, algorithm=algorithm,
                                            region=region)
        return server.name

    def can_leave(self, name: str) -> bool:
        """Whether ``name`` is a server currently eligible to depart."""
        for server in self.deployment.servers:
            if server.name == name:
                return (not server.bootstrapping and not server.draining
                        and not server.departed
                        and len(self.deployment.servers) > 1)
        return False

    def leave(self, name: str, drain: bool = True) -> None:
        """Retire a server cleanly (drained by default)."""
        self.deployment.remove_server(name, drain=drain)

    # -- partition ownership -----------------------------------------------------

    @staticmethod
    def _cut_key(group: set[str], rest: set[str]) -> frozenset[frozenset[str]]:
        return frozenset((frozenset(group), frozenset(rest)))

    def claim_partition(self, group: set[str], rest: set[str]) -> None:
        """Install a cut under reference counting.

        ``Network.partition`` is idempotent, so overlapping Partition events
        resolving to the same cut share one underlying partition; counting
        claims makes the cut heal only when its *last* owner releases it.
        """
        key = self._cut_key(group, rest)
        count = self._partition_claims.get(key, 0)
        if count == 0:
            self.network.partition(group, rest)
        self._partition_claims[key] = count + 1

    def release_partition(self, group: set[str], rest: set[str]) -> None:
        """Drop one claim on a cut; the last release heals it."""
        key = self._cut_key(group, rest)
        count = self._partition_claims.get(key, 0)
        if count <= 1:
            self._partition_claims.pop(key, None)
            self.network.heal(group, rest)
        else:
            self._partition_claims[key] = count - 1

    def heal_all_partitions(self) -> None:
        """Explicit global heal (the ``Heal`` event): clears every claim."""
        self._partition_claims.clear()
        self.network.heal()

    # -- bookkeeping --------------------------------------------------------------

    def record(self, kind: str, targets: list[str] | None = None,
               until: float | None = None, note: str = "",
               open_ended: bool = False) -> None:
        """Log one applied fault into the timeline and the metrics collector.

        An entry is a *fault window* when it has an ``until`` or is declared
        ``open_ended`` (active until the end of the run); anything else —
        heals, recoveries, skipped degenerate events — is instantaneous and
        does not count toward the during-faults metrics.
        """
        self._injector.record(kind, targets or [], until, note, open_ended)


class FaultInjector:
    """Schedules a :class:`FaultScheduleConfig` onto a deployment's simulator."""

    def __init__(self, deployment: "Deployment",
                 schedule: FaultScheduleConfig) -> None:
        self.deployment = deployment
        self.schedule = schedule
        self.rng = deployment.sim.rng.derive("faults")
        self.context = FaultContext(deployment, self.rng, self)
        #: Applied-fault timeline (JSON-safe entries, in application order).
        self.applied: list[dict[str, Any]] = []
        #: Active-fault windows as ``(start, end-or-None)``; ``None`` means
        #: open-ended (until the end of the run).  Instantaneous entries
        #: (heal, recover) appear in :attr:`applied` but not here.
        self._windows: list[tuple[float, float | None]] = []
        #: Servers a Byzantine event actually turned.  Gates the ``byzantine``
        #: block of the report: crash-only and fault-free schedules stay
        #: byte-identical to the pre-Byzantine artifact schema.
        self._byzantine_servers: set[str] = set()
        self._armed = False

    def note_byzantine(self, names: list[str]) -> None:
        """Record that a Byzantine event turned ``names``."""
        self._byzantine_servers.update(names)

    @property
    def byzantine_servers(self) -> set[str]:
        """Every server a Byzantine event turned so far (ever, not currently)."""
        return set(self._byzantine_servers)

    def arm(self) -> None:
        """Schedule every event's ``apply`` at its ``at`` time.  Idempotent."""
        if self._armed:
            return
        self._armed = True
        sim = self.deployment.sim
        for event in self.schedule.events:
            sim.call_at(max(event.at, sim.now),
                        lambda e=event: e.apply(self.context))

    def record(self, kind: str, targets: list[str], until: float | None,
               note: str, open_ended: bool = False) -> None:
        entry: dict[str, Any] = {"at": self.deployment.sim.now, "kind": kind,
                                 "targets": list(targets)}
        if until is not None:
            entry["until"] = until
        if note:
            entry["note"] = note
        self.applied.append(entry)
        if until is not None or open_ended:
            self._windows.append((self.deployment.sim.now, until))

    # -- resilience report --------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """The ``RunResult.faults`` block for the run so far (JSON-safe)."""
        deployment = self.deployment
        metrics = deployment.metrics
        network = deployment.network
        horizon = deployment.sim.now

        intervals = [(start, horizon if end is None else end)
                     for start, end in self._windows]
        commit_times = metrics.commit_times()

        # Per-window availability over the injection phase: the fraction of
        # elements injected in each window that eventually committed.
        window = self.schedule.availability_window
        duration = deployment.config.workload.injection_duration
        buckets: dict[int, list[int]] = {}
        for record in metrics.elements.values():
            if record.injected_at is None or record.injected_at >= duration:
                continue
            bucket = buckets.setdefault(int(record.injected_at // window), [0, 0])
            bucket[0] += 1
            if record.committed:
                bucket[1] += 1
        windows = [{"start": index * window, "injected": count,
                    "committed": done,
                    "availability": (done / count) if count else None}
                   for index, (count, done) in sorted(buckets.items())]

        # Commit latency inside vs outside active fault windows.
        during: list[float] = []
        outside: list[float] = []
        for record in metrics.elements.values():
            latency = record.commit_latency()
            if latency is None or record.injected_at is None:
                continue
            injected_at = record.injected_at
            if any(start <= injected_at < end for start, end in intervals):
                during.append(latency)
            else:
                outside.append(latency)

        def mean(values: list[float]) -> float | None:
            return sum(values) / len(values) if values else None

        # Recovery: time from each fault's end to the first commit observed
        # at or after it (None when nothing committed afterwards).
        recovery = []
        for entry in self.applied:
            end = entry.get("until")
            if end is None:
                continue
            index = bisect_left(commit_times, end)
            first = commit_times[index] if index < len(commit_times) else None
            recovery.append({
                "kind": entry["kind"], "healed_at": end,
                "first_commit_after": first,
                "recovery_s": None if first is None else first - end,
            })

        report = {
            "schedule_events": len(self.schedule.events),
            "events": [dict(entry) for entry in self.applied],
            "messages_dropped": network.messages_dropped,
            "messages_duplicated": network.messages_duplicated,
            "rejected_while_crashed": sum(
                getattr(server, "crashed_rejects", 0)
                for server in deployment.servers),
            "availability": {"window_s": window, "windows": windows},
            "commit_latency_s": {"during_faults": mean(during),
                                 "fault_free": mean(outside)},
            "recovery": recovery,
        }
        if self._byzantine_servers:
            # Only schedules that actually turned a server Byzantine grow
            # this block, so crash-only artifacts keep the PR 4 schema.
            report["byzantine"] = {
                "servers": sorted(self._byzantine_servers),
                "counters": dict(sorted(metrics.byzantine_counters.items())),
                "by_server": {
                    name: dict(sorted(counters.items()))
                    for name, counters
                    in sorted(metrics.byzantine_by_server.items())},
            }
        return report
