"""The typed fault-event DSL: declarative, seed-deterministic chaos events.

Every event is a frozen dataclass with an ``at`` time (simulated seconds) and,
where the fault has an extent, an ``until`` time; targets are described by a
:class:`Targets` selector (explicit node names, a region, a role, or an
RNG-derived random subset via ``count``) resolved at apply time against the
live deployment.  Events serialise to plain JSON dicts with a ``kind``
discriminator resolved through the :mod:`repro.faults.plugins` registry, so
schedules round-trip through ``ExperimentConfig`` echoes and third-party
event classes participate without core edits.

The eight built-in kinds follow the Jepsen nemesis vocabulary:

=============== ================================================================
``partition``   split a node group from the rest (optionally re-rolled every
                ``period`` seconds — "partition a random minority every N ms")
``heal``        remove every installed partition
``crash``       crash-fault nodes (auto-recover at ``until``)
``recover``     explicitly recover crashed nodes
``message-loss`` drop each matching message with probability ``rate``
``duplicate``   deliver each matching message twice with probability ``rate``
``delay-spike`` add ``extra_ms`` (+ uniform jitter) to matching messages
``churn``       every ``period``: recover the previous victims, crash a fresh
                random ``count`` — rolling restarts / validator churn
=============== ================================================================

Two further kinds turn the :mod:`repro.core.byzantine` behaviour strategies
into nemeses, so chaos timelines mix crash and Byzantine faults:

=================== ============================================================
``become-byzantine`` attach a named behaviour (withhold / wrong-hash /
                     invalid-element / equivocate / silent) to the targeted
                     servers, reverting at ``until`` when set
``become-correct``   explicitly shed the targeted servers' behaviours
=================== ============================================================

Two membership kinds make the node set itself dynamic — a deliberate
join/leave is a scheduled reconfiguration, not a fault window:

=========== ====================================================================
``join``    admit a new server (bootstrapped via state transfer) or validator;
            it counts toward quorums only once caught up
``leave``   retire nodes cleanly: drain, hand off obligations, then depart —
            distinct from a crash (no recovery, quorums shrink)
=========== ====================================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Mapping

from ..errors import ConfigurationError, did_you_mean
from .plugins import register_fault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .injector import FaultContext

#: Valid ``Targets.role`` values.
ROLES = ("servers", "validators", "all")


@dataclass(frozen=True)
class Targets:
    """Which nodes a fault hits, resolved at apply time.

    ``nodes`` selects explicitly by name; otherwise the pool is every node of
    ``role`` ("servers", "validators", or "all"), optionally narrowed to one
    ``region``.  ``count`` draws a random subset of that size from the
    injector's derived RNG stream — the randomized-variant hook ("crash a
    random server", "partition a random minority").
    """

    nodes: tuple[str, ...] = ()
    region: str | None = None
    role: str = "servers"
    count: int | None = None

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ConfigurationError(
                f"unknown fault target role {self.role!r}"
                + did_you_mean(self.role, list(ROLES)))
        if self.count is not None and self.count < 1:
            raise ConfigurationError("target count must be at least 1")
        if not isinstance(self.nodes, tuple):
            object.__setattr__(self, "nodes", tuple(self.nodes))

    def to_dict(self) -> dict[str, Any]:
        return {"nodes": list(self.nodes), "region": self.region,
                "role": self.role, "count": self.count}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Targets":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault targets must be an object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault target fields: {unknown}")
        payload = dict(data)
        if "nodes" in payload:
            payload["nodes"] = tuple(payload["nodes"])
        return cls(**payload)


@dataclass(frozen=True, kw_only=True)
class FaultEvent:
    """Base of every fault event: an ``at`` instant plus an optional extent.

    Subclasses implement :meth:`apply`, which performs the event's effect when
    the injector's timer fires at ``at`` — including scheduling its own end at
    ``until`` (targeted heal, auto-recover, rule removal) and any periodic
    re-rolls.  Fields holding a :class:`Targets` selector must be listed in
    ``_target_fields`` so generic (de)serialisation converts them.
    """

    #: Wire discriminator, assigned by ``@register_fault``.
    kind: ClassVar[str] = "?"
    #: Field names (de)serialised as :class:`Targets`.
    _target_fields: ClassVar[tuple[str, ...]] = ()

    at: float = 0.0
    until: float | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"fault time cannot be negative: {self.at}")
        if self.until is not None and self.until <= self.at:
            raise ConfigurationError(
                f"fault until ({self.until}) must be after at ({self.at})")

    # -- behaviour --------------------------------------------------------------

    def apply(self, ctx: "FaultContext") -> None:
        """Perform the event's effect (called at simulated time ``at``)."""
        raise NotImplementedError  # pragma: no cover - abstract

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A pure-JSON dict with a ``kind`` discriminator."""
        data: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, Targets):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            data[field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        """Invert :meth:`to_dict` (the ``kind`` key is optional here)."""
        payload = dict(data)
        payload.pop("kind", None)
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - field_names)
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.kind!r} fault fields: {unknown}"
                + did_you_mean(unknown[0], sorted(field_names)))
        for name, value in list(payload.items()):
            if name in cls._target_fields and value is not None:
                payload[name] = Targets.from_dict(value)
            elif isinstance(value, list):
                payload[name] = tuple(value)
        return cls(**payload)


def _require_rate(rate: float, kind: str) -> None:
    if not 0.0 < rate <= 1.0:
        raise ConfigurationError(
            f"{kind} rate must be in (0, 1], got {rate}")


@register_fault("partition")
@dataclass(frozen=True, kw_only=True)
class Partition(FaultEvent):
    """Split ``group`` from every other node until ``until`` (or forever).

    With ``period`` set (requires ``until``), the partition is re-rolled every
    ``period`` seconds: the previous cut heals and a fresh group — random when
    the selector uses ``count`` — is isolated, until the event's extent ends.
    """

    _target_fields: ClassVar[tuple[str, ...]] = ("group",)

    group: Targets = Targets(role="all")
    period: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period is not None:
            if self.period <= 0:
                raise ConfigurationError("partition period must be positive")
            if self.until is None:
                raise ConfigurationError(
                    "a periodic (flapping) partition needs an until time")

    def apply(self, ctx: "FaultContext") -> None:
        stop = self.until if self.until is not None else None
        state: dict[str, tuple[set[str], set[str]]] = {}

        def install(end: float | None) -> None:
            group = set(ctx.resolve(self.group))
            rest = set(ctx.all_nodes()) - group
            if not group or not rest:
                ctx.record(self.kind, targets=sorted(group),
                           note="degenerate partition (empty side); skipped")
                return
            ctx.claim_partition(group, rest)
            state["pair"] = (group, rest)
            ctx.record(self.kind, targets=sorted(group), until=end,
                       open_ended=end is None)

        def uninstall() -> None:
            pair = state.pop("pair", None)
            if pair is not None:
                ctx.release_partition(*pair)

        if self.period is None:
            install(stop)
            if stop is not None:
                ctx.sim.call_at(stop, uninstall)
            return

        def cycle() -> None:
            uninstall()
            assert stop is not None
            if ctx.sim.now >= stop - 1e-12:
                return
            install(min(ctx.sim.now + self.period, stop))
            ctx.sim.call_at(min(ctx.sim.now + self.period, stop), cycle)

        cycle()


@register_fault("heal")
@dataclass(frozen=True, kw_only=True)
class Heal(FaultEvent):
    """Remove every installed partition at ``at`` (clearing all ownership)."""

    def apply(self, ctx: "FaultContext") -> None:
        ctx.heal_all_partitions()
        ctx.record(self.kind)


@register_fault("crash")
@dataclass(frozen=True, kw_only=True)
class Crash(FaultEvent):
    """Crash-fault the targeted nodes; auto-recover at ``until`` if set.

    Nodes another fault already crashed are skipped: each crash-type event
    owns — and later recovers — exactly the nodes it brought down, so
    overlapping schedules never truncate each other's fault windows.
    """

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    targets: Targets = Targets(role="servers", count=1)

    def apply(self, ctx: "FaultContext") -> None:
        names = ctx.live(ctx.resolve(self.targets))
        if not names:
            # Every target is already down (owned by another event): nothing
            # was crashed, so no fault window opens and nothing to recover.
            ctx.record(self.kind, note="all targets already crashed; skipped")
            return
        token = ctx.claim_crashes(names)
        ctx.record(self.kind, targets=names, until=self.until,
                   open_ended=self.until is None)
        if self.until is not None:
            ctx.sim.call_at(self.until,
                            lambda: ctx.release_crashes(names, token))


@register_fault("recover")
@dataclass(frozen=True, kw_only=True)
class Recover(FaultEvent):
    """Recover crashed nodes (no-op for nodes that are up)."""

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    targets: Targets = Targets(role="servers")

    def apply(self, ctx: "FaultContext") -> None:
        names = ctx.resolve(self.targets)
        for name in names:
            ctx.force_recover(name)
        ctx.record(self.kind, targets=names)


@register_fault("message-loss")
@dataclass(frozen=True, kw_only=True)
class MessageLoss(FaultEvent):
    """Drop each matching message with probability ``rate`` while active.

    ``targets`` (optional) restricts the loss to messages whose sender *or*
    recipient is a resolved target — a flaky host rather than a flaky fabric.
    """

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    rate: float = 0.01
    targets: Targets | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_rate(self.rate, self.kind)

    def apply(self, ctx: "FaultContext") -> None:
        resolved = ctx.resolve(self.targets)
        match = ctx.name_matcher(resolved if self.targets is not None else None)
        rng = ctx.rng
        rate = self.rate

        def rule(message) -> bool:  # type: ignore[no-untyped-def]
            return match(message) and rng.random() < rate

        ctx.network.add_drop_rule(rule)
        ctx.record(self.kind, targets=resolved, until=self.until,
                   note=f"rate={rate:g}", open_ended=self.until is None)
        if self.until is not None:
            ctx.sim.call_at(self.until,
                            lambda: ctx.network.remove_drop_rule(rule))


@register_fault("duplicate")
@dataclass(frozen=True, kw_only=True)
class Duplicate(FaultEvent):
    """Deliver each matching message twice with probability ``rate``.

    The duplicate copy draws its own latency, modelling gossip re-delivery /
    at-least-once transports; protocol layers must already deduplicate.
    """

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    rate: float = 0.01
    targets: Targets | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_rate(self.rate, self.kind)

    def apply(self, ctx: "FaultContext") -> None:
        resolved = ctx.resolve(self.targets)
        match = ctx.name_matcher(resolved if self.targets is not None else None)
        rng = ctx.rng
        rate = self.rate

        def rule(message) -> bool:  # type: ignore[no-untyped-def]
            return match(message) and rng.random() < rate

        ctx.network.add_duplicate_rule(rule)
        ctx.record(self.kind, targets=resolved, until=self.until,
                   note=f"rate={rate:g}", open_ended=self.until is None)
        if self.until is not None:
            ctx.sim.call_at(self.until,
                            lambda: ctx.network.remove_duplicate_rule(rule))


@register_fault("delay-spike")
@dataclass(frozen=True, kw_only=True)
class DelaySpike(FaultEvent):
    """Add ``extra_ms`` (plus uniform ``jitter_ms`` noise) to matching messages."""

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    extra_ms: float = 100.0
    jitter_ms: float = 0.0
    targets: Targets | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_ms < 0 or self.jitter_ms < 0:
            raise ConfigurationError("delay spike extra/jitter cannot be negative")

    def apply(self, ctx: "FaultContext") -> None:
        resolved = ctx.resolve(self.targets)
        match = ctx.name_matcher(resolved if self.targets is not None else None)
        rng = ctx.rng
        extra = self.extra_ms / 1000.0
        jitter = self.jitter_ms / 1000.0

        def rule(message) -> float:  # type: ignore[no-untyped-def]
            if not match(message):
                return 0.0
            return extra + (rng.uniform(0.0, jitter) if jitter else 0.0)

        ctx.network.add_delay_rule(rule)
        ctx.record(self.kind, targets=resolved, until=self.until,
                   note=f"extra={self.extra_ms:g}ms jitter={self.jitter_ms:g}ms",
                   open_ended=self.until is None)
        if self.until is not None:
            ctx.sim.call_at(self.until,
                            lambda: ctx.network.remove_delay_rule(rule))


@register_fault("become-byzantine")
@dataclass(frozen=True, kw_only=True)
class BecomeByzantine(FaultEvent):
    """Turn the targeted servers Byzantine with ``behaviour`` at ``at``.

    With ``until`` set the servers revert to correct automatically (the
    Byzantine window analogue of ``Crash``'s auto-recover); otherwise they
    stay Byzantine until a :class:`BecomeCorrect` event — or the end of the
    run.  Only Setchain servers can turn Byzantine: the consensus layer
    models its own fault threshold, so ``role="validators"`` is rejected and
    non-server targets resolved through ``role="all"`` are skipped.

    Schedules containing this kind are validated against the f-budget at
    config time: at no instant may Byzantine plus crashed servers reach the
    quorum (``f + 1``) of any algorithm group — see
    :func:`repro.faults.schedule.validate_fault_budget`.
    """

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    targets: Targets = Targets(role="servers", count=1)
    behaviour: str = "silent"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.targets.role == "validators":
            raise ConfigurationError(
                "Byzantine behaviours apply to Setchain servers; the "
                "consensus layer models its own fault threshold "
                "(use role='servers')")
        # Imported lazily: core.byzantine transitively imports repro.config,
        # which imports this module at load time.
        from ..core.byzantine import behaviour_names, has_behaviour
        if not has_behaviour(self.behaviour):
            raise ConfigurationError(
                f"unknown Byzantine behaviour {self.behaviour!r}"
                + did_you_mean(self.behaviour, behaviour_names()))

    def apply(self, ctx: "FaultContext") -> None:
        names = [name for name in ctx.correct(ctx.resolve(self.targets))
                 if ctx.is_server(name)]
        if not names:
            # Every target is already Byzantine (owned by another event) or
            # not a Setchain server: nothing turned, nothing to revert.
            ctx.record(self.kind, note="no eligible targets; skipped")
            return
        token = ctx.claim_byzantine(names, self.behaviour)
        ctx.record(self.kind, targets=names, until=self.until,
                   note=f"behaviour={self.behaviour}",
                   open_ended=self.until is None)
        if self.until is not None:
            ctx.sim.call_at(self.until,
                            lambda: ctx.release_byzantine(names, token))


@register_fault("become-correct")
@dataclass(frozen=True, kw_only=True)
class BecomeCorrect(FaultEvent):
    """Shed the targeted servers' Byzantine behaviours (no-op when correct).

    Detaching runs the behaviour's clean-up side effects — a ``withhold``
    server answers its buffered ``Request_batch`` messages, so consolidation
    of the withheld hashes resumes.
    """

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    targets: Targets = Targets(role="servers")

    def apply(self, ctx: "FaultContext") -> None:
        names = [name for name in ctx.resolve(self.targets)
                 if ctx.is_server(name)]
        for name in names:
            ctx.force_correct(name)
        ctx.record(self.kind, targets=names)


@register_fault("join")
@dataclass(frozen=True, kw_only=True)
class Join(FaultEvent):
    """Admit a new node at ``at``: state transfer, then epoch-aware quorums.

    With ``role="servers"`` (the default) a fresh Setchain server is built,
    bootstrapped from a live peer (ledger block-sync plus batch-store
    priming), and admitted to the membership log once caught up; on a
    CometBFT backend the server's co-located validator joins the consensus
    set too, activating two blocks later as in real Tendermint.  With
    ``role="validators"`` only a consensus node is added.  ``node`` names the
    newcomer explicitly; by default names continue the deployment's
    ``server-<i>`` / ``cometbft-<i>`` sequences deterministically.
    """

    node: str | None = None
    role: str = "servers"
    region: str | None = None
    algorithm: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.role not in ("servers", "validators"):
            raise ConfigurationError(
                f"join role must be 'servers' or 'validators', got {self.role!r}")
        if self.until is not None:
            raise ConfigurationError("join is instantaneous; it takes no until")

    def apply(self, ctx: "FaultContext") -> None:
        name = ctx.join(node=self.node, role=self.role, region=self.region,
                        algorithm=self.algorithm)
        ctx.record(self.kind, targets=[name],
                   note=f"role={self.role}" + (
                       f" region={self.region}" if self.region else ""))


@register_fault("leave")
@dataclass(frozen=True, kw_only=True)
class Leave(FaultEvent):
    """Retire the targeted nodes at ``at`` — a clean departure, not a crash.

    With ``drain=True`` (the default) each server first stops accepting new
    elements, flushes its collector, waits out its pending ``Request_batch``
    obligations, hands its batch store off to the surviving peers, and only
    then leaves the membership; ``drain=False`` retires it immediately (the
    store handoff still happens — the node departs politely either way).
    Targets that are crashed, still bootstrapping, or already gone are
    skipped; the last member of the deployment can never leave.
    """

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    targets: Targets = Targets(role="servers", count=1)
    drain: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.targets.role == "validators":
            raise ConfigurationError(
                "leave targets Setchain servers (a co-located validator "
                "retires with its server); use role='servers'")
        if self.until is not None:
            raise ConfigurationError("leave is instantaneous; it takes no until")

    def apply(self, ctx: "FaultContext") -> None:
        names = [name for name in ctx.live(ctx.resolve(self.targets))
                 if ctx.can_leave(name)]
        if not names:
            ctx.record(self.kind, note="no eligible targets; skipped")
            return
        for name in names:
            ctx.leave(name, drain=self.drain)
        ctx.record(self.kind, targets=names,
                   note="drain" if self.drain else "immediate")


@register_fault("churn")
@dataclass(frozen=True, kw_only=True)
class Churn(FaultEvent):
    """Rolling crash/recover: every ``period``, recover the previous victims
    and crash a fresh random ``count`` drawn from the target pool.

    ``Churn(at=5, until=45, period=5)`` is a rolling restart;
    ``Churn(..., targets=Targets(role="validators"), count=f)`` keeps the
    consensus layer at its fault budget continuously.
    """

    _target_fields: ClassVar[tuple[str, ...]] = ("targets",)

    period: float = 5.0
    count: int = 1
    targets: Targets = Targets(role="servers")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period <= 0:
            raise ConfigurationError("churn period must be positive")
        if self.count < 1:
            raise ConfigurationError("churn count must be at least 1")
        if self.until is None:
            raise ConfigurationError("churn needs an until time")

    def apply(self, ctx: "FaultContext") -> None:
        stop = self.until
        assert stop is not None
        pool_selector = dataclasses.replace(self.targets, count=None)
        state: dict[str, Any] = {"down": [], "token": 0}

        def tick() -> None:
            ctx.release_crashes(state["down"], state["token"])
            state["down"] = []
            if ctx.sim.now >= stop - 1e-12:
                return
            # Sample only live nodes: victims of an overlapping crash event
            # belong to that event and must not be "recovered" by churn.
            pool = ctx.live(ctx.resolve(pool_selector))
            picked = ctx.sample(pool, min(self.count, len(pool)))
            if picked:
                state["token"] = ctx.claim_crashes(picked)
                state["down"] = picked
                ctx.record(self.kind, targets=picked,
                           until=min(ctx.sim.now + self.period, stop))
            else:
                ctx.record(self.kind, note="pool empty; cycle skipped")
            ctx.sim.call_at(min(ctx.sim.now + self.period, stop), tick)

        tick()
