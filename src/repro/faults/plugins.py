"""The fault-event registry: ``@register_fault`` and kind lookups.

Mirrors the :mod:`repro.topology.plugins` registries (same
:class:`~repro.topology.plugins.PluginRegistry` machinery, same lazy-builtins
pattern, same did-you-mean lookups): each fault *kind* maps to its event
class, so serialised schedules (``FaultScheduleConfig.from_dict``) and
user-authored chaos timelines resolve through one table that third-party code
can extend without editing core::

    from repro.faults import FaultEvent, register_fault

    @register_fault("clock-skew")
    @dataclass(frozen=True, kw_only=True)
    class ClockSkew(FaultEvent):
        skew_ms: float = 0.0

        def apply(self, ctx):
            ...

The built-in kinds (partition/heal/crash/recover/message-loss/duplicate/
delay-spike/churn) are registered by :mod:`repro.faults.events`, loaded
lazily on first registry access.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..topology.plugins import PluginRegistry, once

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import FaultEvent


def _load_builtins() -> None:
    from . import events  # noqa: F401  (imported for its side effect)


_FAULTS: "PluginRegistry[type[FaultEvent]]" = PluginRegistry(
    "fault", loader=once(_load_builtins))


def register_fault(name: str, *, replace: bool = False):
    """Decorator registering a :class:`~repro.faults.events.FaultEvent` class.

    The registered name becomes the event's wire ``kind`` (used by
    ``to_dict``/``from_dict``), so schedules serialised into
    ``ExperimentConfig`` echoes round-trip through the registry.
    """
    def decorator(event_cls: "type[FaultEvent]") -> "type[FaultEvent]":
        # Register first: a rejected registration (duplicate, empty name)
        # must not have mutated the class's wire kind.
        registered = _FAULTS.register(name, event_cls, replace=replace)
        registered.kind = name
        return registered
    return decorator


def get_fault(name: str) -> "type[FaultEvent]":
    return _FAULTS.get(name)


def fault_names() -> list[str]:
    return _FAULTS.names()


def has_fault(name: str) -> bool:
    return name in _FAULTS


def unregister_fault(name: str) -> None:
    _FAULTS.unregister(name)
