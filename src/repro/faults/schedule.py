"""Declarative fault timelines: :class:`FaultScheduleConfig`.

The schedule is the frozen, serialisable piece that rides on
:class:`~repro.config.ExperimentConfig` — a tuple of
:class:`~repro.faults.events.FaultEvent` instances plus the window width used
by the resilience report's per-window availability metric.  ``to_dict`` /
``from_dict`` round-trip exactly through JSON (events carry their registry
``kind``), so chaos scenarios persist in ``RunResult`` config echoes the same
way topologies do, and fault-free configs (``faults=None``) leave artifacts
byte-identical to pre-faults schemas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..errors import ConfigurationError
from .events import (
    BecomeByzantine,
    BecomeCorrect,
    Churn,
    Crash,
    FaultEvent,
    Targets,
)
from .plugins import get_fault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SetchainConfig

#: Default availability-window width (simulated seconds).
DEFAULT_AVAILABILITY_WINDOW = 5.0


@dataclass(frozen=True)
class FaultScheduleConfig:
    """An ordered chaos timeline plus resilience-metric parameters."""

    events: tuple[FaultEvent, ...] = ()
    #: Width (seconds) of the windows used by the availability metric.
    availability_window: float = DEFAULT_AVAILABILITY_WINDOW

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"fault schedule entries must be FaultEvent instances, "
                    f"got {type(event).__name__}")
        if self.availability_window <= 0:
            raise ConfigurationError("availability window must be positive")

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_time(self) -> float:
        """Latest instant named by the schedule (0 when empty)."""
        times = [event.at for event in self.events]
        times += [event.until for event in self.events if event.until is not None]
        return max(times, default=0.0)

    def extended(self, *events: FaultEvent) -> "FaultScheduleConfig":
        """A copy with ``events`` appended."""
        return FaultScheduleConfig(events=self.events + tuple(events),
                                   availability_window=self.availability_window)

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events],
                "availability_window": self.availability_window}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultScheduleConfig":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault schedule must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - {"events", "availability_window"})
        if unknown:
            raise ConfigurationError(f"unknown fault schedule fields: {unknown}")
        raw_events: Iterable[Mapping[str, Any]] = data.get("events", ())
        events = []
        for entry in raw_events:
            if not isinstance(entry, Mapping) or "kind" not in entry:
                raise ConfigurationError(
                    "each fault schedule event needs a 'kind' discriminator")
            events.append(get_fault(str(entry["kind"])).from_dict(entry))
        return cls(events=tuple(events),
                   availability_window=float(
                       data.get("availability_window",
                                DEFAULT_AVAILABILITY_WINDOW)))


# -- static f-budget validation -------------------------------------------------
#
# Enforced only for schedules that turn servers Byzantine: the paper's
# guarantees assume at most ``f`` faulty (Byzantine or crashed) servers, so a
# schedule whose worst case reaches the quorum (f + 1) can never honour
# Properties 1-8 and is rejected at config time.  The analysis is a
# conservative static over-approximation — random ``count`` selectors are
# charged their full count against every group they could hit, ``Recover``
# events are ignored, and overlapping events targeting the same node are
# summed as if they hit distinct nodes.  Crash-only schedules (e.g. the
# deliberate beyond-f chaos scenarios) are exempt: exceeding the budget with
# crashes alone voids liveness only until recovery, which is a legitimate
# experiment, whereas a Byzantine majority silently voids safety.


def _server_index(name: str) -> int | None:
    """Parse the deployment's ``server-<i>`` naming; None for other nodes."""
    prefix, _, suffix = name.partition("-")
    if prefix == "server" and suffix.isdigit():
        return int(suffix)
    return None


def _pool_cost(targets: Targets, pool: "set[int]",
               region_of: "dict[int, str | None]",
               count_override: int | None = None) -> int:
    """Worst-case number of servers in ``pool`` a selector can hit at once.

    Mirrors ``FaultContext.resolve`` precedence exactly: explicit ``nodes``
    win outright (region and role are ignored at apply time), so they must
    be counted before any narrowing here — filtering named nodes by region
    first would under-count selectors like ``nodes + region`` and wave a
    Byzantine majority through.
    """
    if targets.nodes:
        hits = {_server_index(name) for name in targets.nodes}
        return len(hits & pool)
    if targets.region is not None:
        pool = {index for index in pool
                if region_of.get(index) == targets.region}
    if targets.role == "validators":
        return 0  # validator faults do not consume the Setchain budget
    count = count_override if count_override is not None else targets.count
    if count is None:
        return len(pool)
    return min(count, len(pool))


def _byzantine_end(event: BecomeByzantine, index: int,
                   events: "Sequence[FaultEvent]") -> float:
    """When an open-ended BecomeByzantine is statically known to revert."""
    if event.until is not None:
        return event.until
    nodes = set(event.targets.nodes)
    for later in events[index + 1:]:
        if not isinstance(later, BecomeCorrect) or later.at < event.at:
            continue
        targets = later.targets
        blanket = (not targets.nodes and targets.count is None
                   and targets.region is None and targets.role == "servers")
        if blanket or (nodes and nodes <= set(targets.nodes)):
            return later.at
    return math.inf


def validate_fault_budget(schedule: "FaultScheduleConfig",
                          setchain: "SetchainConfig",
                          assignments: "Sequence[tuple[str | None, str]]") -> None:
    """Reject schedules whose Byzantine + crashed servers can reach the quorum.

    ``assignments`` is ``ExperimentConfig.server_assignments()`` — per-server
    ``(region, algorithm)`` — so the check is applied per algorithm group
    (each group is its own Setchain instance over the shared ledger) as well
    as globally against the declared tolerance ``f``.  Only schedules
    containing a :class:`~repro.faults.events.BecomeByzantine` event are
    validated; see the module comment for the (conservative) approximations.
    """
    events = schedule.events
    if not any(isinstance(event, BecomeByzantine) for event in events):
        return
    region_of: dict[int, str | None] = {
        index: region for index, (region, _algorithm) in enumerate(assignments)}
    groups: dict[str, set[int]] = {}
    for index, (_region, algorithm) in enumerate(assignments):
        groups.setdefault(algorithm, set()).add(index)
    all_servers = set(region_of)

    # (start, end, kind, per-scope cost) intervals; scope "all" plus one per group.
    intervals: list[tuple[float, float, str, dict[str, int]]] = []
    for index, event in enumerate(events):
        if isinstance(event, Crash):
            start, end = event.at, (math.inf if event.until is None
                                    else event.until)
            targets, count_override = event.targets, None
        elif isinstance(event, Churn):
            start, end = event.at, event.until if event.until is not None else math.inf
            targets, count_override = event.targets, event.count
        elif isinstance(event, BecomeByzantine):
            start = event.at
            end = _byzantine_end(event, index, events)
            targets, count_override = event.targets, None
        else:
            continue
        costs = {"all": _pool_cost(targets, all_servers, region_of,
                                   count_override)}
        for group, members in groups.items():
            costs[group] = _pool_cost(targets, members, region_of,
                                      count_override)
        kind = "byzantine" if isinstance(event, BecomeByzantine) else "crashed"
        intervals.append((start, end, kind, costs))

    quorum = setchain.quorum
    f = setchain.max_faulty
    for instant in sorted({start for start, _end, _kind, _costs in intervals}):
        active = [entry for entry in intervals
                  if entry[0] <= instant < entry[1]]
        by_kind = {"byzantine": 0, "crashed": 0}
        for _start, _end, kind, costs in active:
            by_kind[kind] += costs["all"]
        if not by_kind["byzantine"]:
            # Crash-only instant: the crash-only exemption applies even
            # inside a schedule that turns servers Byzantine elsewhere —
            # crashes beyond f void liveness only until recovery, and no
            # Byzantine server is present here to void safety.
            continue
        total = by_kind["byzantine"] + by_kind["crashed"]
        if total > f:
            raise ConfigurationError(
                f"fault schedule exceeds the Byzantine budget at "
                f"t={instant:g}s: up to {by_kind['byzantine']} Byzantine and "
                f"{by_kind['crashed']} crashed server(s) at once, but the "
                f"scenario tolerates f={f} faulty server(s) "
                f"(n={setchain.n_servers}, quorum={quorum}); shorten or "
                "stagger the fault windows, or raise f/n")
        for group, members in groups.items():
            group_byz = sum(costs[group] for _s, _e, kind, costs in active
                            if kind == "byzantine")
            group_total = sum(costs[group] for _s, _e, _kind, costs in active)
            # Only the schedule's own *Byzantine* damage counts per group:
            # a group too small to reach quorum even fault-free is a
            # topology property, and a crash-only group is a liveness
            # experiment, not a schedule error.
            if group_byz and len(members) - group_total < quorum:
                raise ConfigurationError(
                    f"fault schedule leaves the {group!r} group below quorum "
                    f"at t={instant:g}s: up to {group_total} of "
                    f"{len(members)} server(s) Byzantine or crashed, but "
                    f"epoch commits need {quorum} correct signer(s) "
                    f"(quorum = f+1 with f={f}); shorten or stagger the "
                    "fault windows, or raise the group size")
