"""Declarative fault timelines: :class:`FaultScheduleConfig`.

The schedule is the frozen, serialisable piece that rides on
:class:`~repro.config.ExperimentConfig` — a tuple of
:class:`~repro.faults.events.FaultEvent` instances plus the window width used
by the resilience report's per-window availability metric.  ``to_dict`` /
``from_dict`` round-trip exactly through JSON (events carry their registry
``kind``), so chaos scenarios persist in ``RunResult`` config echoes the same
way topologies do, and fault-free configs (``faults=None``) leave artifacts
byte-identical to pre-faults schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..errors import ConfigurationError
from .events import FaultEvent
from .plugins import get_fault

#: Default availability-window width (simulated seconds).
DEFAULT_AVAILABILITY_WINDOW = 5.0


@dataclass(frozen=True)
class FaultScheduleConfig:
    """An ordered chaos timeline plus resilience-metric parameters."""

    events: tuple[FaultEvent, ...] = ()
    #: Width (seconds) of the windows used by the availability metric.
    availability_window: float = DEFAULT_AVAILABILITY_WINDOW

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"fault schedule entries must be FaultEvent instances, "
                    f"got {type(event).__name__}")
        if self.availability_window <= 0:
            raise ConfigurationError("availability window must be positive")

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_time(self) -> float:
        """Latest instant named by the schedule (0 when empty)."""
        times = [event.at for event in self.events]
        times += [event.until for event in self.events if event.until is not None]
        return max(times, default=0.0)

    def extended(self, *events: FaultEvent) -> "FaultScheduleConfig":
        """A copy with ``events`` appended."""
        return FaultScheduleConfig(events=self.events + tuple(events),
                                   availability_window=self.availability_window)

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events],
                "availability_window": self.availability_window}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultScheduleConfig":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault schedule must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - {"events", "availability_window"})
        if unknown:
            raise ConfigurationError(f"unknown fault schedule fields: {unknown}")
        raw_events: Iterable[Mapping[str, Any]] = data.get("events", ())
        events = []
        for entry in raw_events:
            if not isinstance(entry, Mapping) or "kind" not in entry:
                raise ConfigurationError(
                    "each fault schedule event needs a 'kind' discriminator")
            events.append(get_fault(str(entry["kind"])).from_dict(entry))
        return cls(events=tuple(events),
                   availability_window=float(
                       data.get("availability_window",
                                DEFAULT_AVAILABILITY_WINDOW)))
