"""Declarative fault timelines: :class:`FaultScheduleConfig`.

The schedule is the frozen, serialisable piece that rides on
:class:`~repro.config.ExperimentConfig` — a tuple of
:class:`~repro.faults.events.FaultEvent` instances plus the window width used
by the resilience report's per-window availability metric.  ``to_dict`` /
``from_dict`` round-trip exactly through JSON (events carry their registry
``kind``), so chaos scenarios persist in ``RunResult`` config echoes the same
way topologies do, and fault-free configs (``faults=None``) leave artifacts
byte-identical to pre-faults schemas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..errors import ConfigurationError
from .events import (
    BecomeByzantine,
    BecomeCorrect,
    Churn,
    Crash,
    FaultEvent,
    Join,
    Leave,
    Targets,
)
from .plugins import get_fault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SetchainConfig

#: Default availability-window width (simulated seconds).
DEFAULT_AVAILABILITY_WINDOW = 5.0


@dataclass(frozen=True)
class FaultScheduleConfig:
    """An ordered chaos timeline plus resilience-metric parameters."""

    events: tuple[FaultEvent, ...] = ()
    #: Width (seconds) of the windows used by the availability metric.
    availability_window: float = DEFAULT_AVAILABILITY_WINDOW

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"fault schedule entries must be FaultEvent instances, "
                    f"got {type(event).__name__}")
        if self.availability_window <= 0:
            raise ConfigurationError("availability window must be positive")

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_time(self) -> float:
        """Latest instant named by the schedule (0 when empty)."""
        times = [event.at for event in self.events]
        times += [event.until for event in self.events if event.until is not None]
        return max(times, default=0.0)

    def extended(self, *events: FaultEvent) -> "FaultScheduleConfig":
        """A copy with ``events`` appended."""
        return FaultScheduleConfig(events=self.events + tuple(events),
                                   availability_window=self.availability_window)

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events],
                "availability_window": self.availability_window}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultScheduleConfig":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault schedule must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - {"events", "availability_window"})
        if unknown:
            raise ConfigurationError(f"unknown fault schedule fields: {unknown}")
        raw_events: Iterable[Mapping[str, Any]] = data.get("events", ())
        events = []
        for entry in raw_events:
            if not isinstance(entry, Mapping) or "kind" not in entry:
                raise ConfigurationError(
                    "each fault schedule event needs a 'kind' discriminator")
            events.append(get_fault(str(entry["kind"])).from_dict(entry))
        return cls(events=tuple(events),
                   availability_window=float(
                       data.get("availability_window",
                                DEFAULT_AVAILABILITY_WINDOW)))


# -- static f-budget validation -------------------------------------------------
#
# Enforced only for schedules that turn servers Byzantine: the paper's
# guarantees assume at most ``f`` faulty (Byzantine or crashed) servers, so a
# schedule whose worst case reaches the quorum (f + 1) can never honour
# Properties 1-8 and is rejected at config time.  With dynamic membership the
# budget is a *step function of time*: a ``Join`` grows ``n`` (and, under the
# derived tolerance, ``f``) from its ``at`` instant on, and a ``Leave``
# shrinks them — so the same crash window can be legal after a join and
# illegal before it.  The analysis is a conservative static
# over-approximation — random ``count`` selectors are charged their full
# count against every group they could hit, ``Recover`` events are ignored,
# overlapping events targeting the same node are summed as if they hit
# distinct nodes, and joiners are credited at ``at`` even though the runtime
# admits them only once caught up.  Crash-only schedules (e.g. the deliberate
# beyond-f chaos scenarios) are exempt: exceeding the budget with crashes
# alone voids liveness only until recovery, which is a legitimate experiment,
# whereas a Byzantine majority silently voids safety.


def _pool_cost(targets: Targets, pool: "set[str]",
               region_of: "dict[str, str | None]",
               count_override: int | None = None) -> int:
    """Worst-case number of servers in ``pool`` a selector can hit at once.

    Mirrors ``FaultContext.resolve`` precedence exactly: explicit ``nodes``
    win outright (region and role are ignored at apply time), so they must
    be counted before any narrowing here — filtering named nodes by region
    first would under-count selectors like ``nodes + region`` and wave a
    Byzantine majority through.
    """
    if targets.nodes:
        return len(set(targets.nodes) & pool)
    if targets.region is not None:
        pool = {name for name in pool
                if region_of.get(name) == targets.region}
    if targets.role == "validators":
        return 0  # validator faults do not consume the Setchain budget
    count = count_override if count_override is not None else targets.count
    if count is None:
        return len(pool)
    return min(count, len(pool))


def _membership_timeline(events: "Sequence[FaultEvent]",
                         assignments: "Sequence[tuple[str | None, str]]",
                         region_of: "dict[str, str | None]",
                         ) -> "list[tuple[float, set[str], dict[str, set[str]], int, dict[str, int], int]]":
    """Server membership as time-ordered snapshots.

    Each snapshot is ``(time, members, group_pools, unknown_departed,
    unknown_departed_by_group, departed_total)``.  Joins are credited at
    their ``at`` along the deployment's deterministic ``server-<i>`` naming
    sequence; explicitly-named leaves remove exact names, while random
    ``count`` leaves depart *unknown* members — the effective size shrinks
    (the ``unknown`` counters) but no name is removed from the cost pools,
    so later events are charged against the larger pool, the conservative
    direction.
    """
    members = {f"server-{index}" for index in range(len(assignments))}
    groups: dict[str, set[str]] = {}
    for index, (_region, algorithm) in enumerate(assignments):
        groups.setdefault(algorithm, set()).add(f"server-{index}")
    algorithms = {algorithm for _region, algorithm in assignments}
    default_group = algorithms.pop() if len(algorithms) == 1 else None

    membership_events = sorted(
        ((event.at, position, event) for position, event in enumerate(events)
         if (isinstance(event, Join) and event.role == "servers")
         or isinstance(event, Leave)),
        key=lambda entry: (entry[0], entry[1]))

    unknown_total = 0
    unknown_by_group: dict[str, int] = {}
    departed = 0
    snapshots = [(0.0, set(members),
                  {group: set(pool) for group, pool in groups.items()},
                  0, {}, 0)]
    next_index = len(assignments)
    for at, _position, event in membership_events:
        if isinstance(event, Join):
            name = event.node if event.node is not None \
                else f"server-{next_index}"
            next_index += 1  # the deployment's counter bumps unconditionally
            members.add(name)
            region_of.setdefault(name, event.region)
            group = event.algorithm or default_group
            if group is not None:
                groups.setdefault(group, set()).add(name)
        else:
            targets = event.targets
            if targets.nodes:
                named = set(targets.nodes) & members
                members -= named
                for pool in groups.values():
                    pool -= named
                departed += len(named)
            else:
                cost = _pool_cost(targets, members, region_of)
                unknown_total += cost
                departed += cost
                for group, pool in groups.items():
                    unknown_by_group[group] = (
                        unknown_by_group.get(group, 0)
                        + _pool_cost(targets, pool, region_of))
        snapshots.append((at, set(members),
                          {group: set(pool) for group, pool in groups.items()},
                          unknown_total, dict(unknown_by_group), departed))
    return snapshots


def _snapshot_at(snapshots, instant):  # type: ignore[no-untyped-def]
    """The last membership snapshot at or before ``instant``."""
    current = snapshots[0]
    for snapshot in snapshots:
        if snapshot[0] <= instant:
            current = snapshot
        else:
            break
    return current


def _byzantine_end(event: BecomeByzantine, index: int,
                   events: "Sequence[FaultEvent]") -> float:
    """When an open-ended BecomeByzantine is statically known to revert."""
    if event.until is not None:
        return event.until
    nodes = set(event.targets.nodes)
    for later in events[index + 1:]:
        if not isinstance(later, BecomeCorrect) or later.at < event.at:
            continue
        targets = later.targets
        blanket = (not targets.nodes and targets.count is None
                   and targets.region is None and targets.role == "servers")
        if blanket or (nodes and nodes <= set(targets.nodes)):
            return later.at
    return math.inf


def validate_fault_budget(schedule: "FaultScheduleConfig",
                          setchain: "SetchainConfig",
                          assignments: "Sequence[tuple[str | None, str]]") -> None:
    """Reject schedules whose Byzantine + crashed servers can reach the quorum.

    ``assignments`` is ``ExperimentConfig.server_assignments()`` — per-server
    ``(region, algorithm)`` — so the check is applied per algorithm group
    (each group is its own Setchain instance over the shared ledger) as well
    as globally against the declared tolerance ``f``.  Only schedules
    containing a :class:`~repro.faults.events.BecomeByzantine` event are
    validated; see the module comment for the (conservative) approximations.
    """
    events = schedule.events
    if not any(isinstance(event, BecomeByzantine) for event in events):
        return
    region_of: dict[str, str | None] = {
        f"server-{index}": region
        for index, (region, _algorithm) in enumerate(assignments)}
    snapshots = _membership_timeline(events, assignments, region_of)
    explicit_f = setchain.f

    # (start, end, kind, per-scope cost) intervals; scope "all" plus one per
    # group.  Costs are charged against the membership at the event's start,
    # so an explicitly-named target that only exists after a join still counts.
    intervals: list[tuple[float, float, str, dict[str, int]]] = []
    for index, event in enumerate(events):
        if isinstance(event, Crash):
            start, end = event.at, (math.inf if event.until is None
                                    else event.until)
            targets, count_override = event.targets, None
        elif isinstance(event, Churn):
            start, end = event.at, event.until if event.until is not None else math.inf
            targets, count_override = event.targets, event.count
        elif isinstance(event, BecomeByzantine):
            start = event.at
            end = _byzantine_end(event, index, events)
            targets, count_override = event.targets, None
        else:
            continue
        _t, members, group_pools, _unknown, _by_group, _departed = \
            _snapshot_at(snapshots, start)
        costs = {"all": _pool_cost(targets, members, region_of,
                                   count_override)}
        for group, pool in group_pools.items():
            costs[group] = _pool_cost(targets, pool, region_of,
                                      count_override)
        kind = "byzantine" if isinstance(event, BecomeByzantine) else "crashed"
        intervals.append((start, end, kind, costs))

    # Every interval start plus every membership change is a potential
    # worst-case instant: a leave mid-window shrinks f under active faults.
    instants = sorted({start for start, _end, _kind, _costs in intervals}
                      | {snapshot[0] for snapshot in snapshots[1:]})
    for instant in instants:
        active = [entry for entry in intervals
                  if entry[0] <= instant < entry[1]]
        by_kind = {"byzantine": 0, "crashed": 0}
        for _start, _end, kind, costs in active:
            by_kind[kind] += costs["all"]
        if not by_kind["byzantine"]:
            # Crash-only instant: the crash-only exemption applies even
            # inside a schedule that turns servers Byzantine elsewhere —
            # crashes beyond f void liveness only until recovery, and no
            # Byzantine server is present here to void safety.
            continue
        _t, members, group_pools, unknown, unknown_by_group, departed = \
            _snapshot_at(snapshots, instant)
        n_t = len(members) - unknown
        f_t = explicit_f if explicit_f is not None else max(0, (n_t - 1) // 2)
        quorum_t = f_t + 1
        total = by_kind["byzantine"] + by_kind["crashed"]
        if total > f_t:
            raise ConfigurationError(
                f"fault schedule exceeds the Byzantine budget at "
                f"t={instant:g}s: up to {by_kind['byzantine']} Byzantine, "
                f"{by_kind['crashed']} crashed, and {departed} departed "
                f"server(s) at that instant, but the membership there is "
                f"n={n_t} tolerating f={f_t} faulty server(s) "
                f"(quorum={quorum_t}); shorten or stagger the fault "
                "windows, join capacity first, or raise f/n")
        for group, pool in group_pools.items():
            group_byz = sum(costs.get(group, 0)
                            for _s, _e, kind, costs in active
                            if kind == "byzantine")
            group_total = sum(costs.get(group, 0)
                              for _s, _e, _kind, costs in active)
            size_t = len(pool) - unknown_by_group.get(group, 0)
            # Only the schedule's own *Byzantine* damage counts per group:
            # a group too small to reach quorum even fault-free is a
            # topology property, and a crash-only group is a liveness
            # experiment, not a schedule error.
            if group_byz and size_t - group_total < quorum_t:
                raise ConfigurationError(
                    f"fault schedule leaves the {group!r} group below quorum "
                    f"at t={instant:g}s: up to {group_byz} Byzantine and "
                    f"{group_total - group_byz} crashed of {size_t} member "
                    f"server(s), but epoch commits need {quorum_t} correct "
                    f"signer(s) (quorum = f+1 with f={f_t}); shorten or "
                    "stagger the fault windows, or grow the group first")
