"""Deterministic fault injection: declarative chaos timelines for deployments.

The :mod:`repro.faults` package turns the network's raw test hooks
(``add_drop_rule``, ``partition``) into a scheduled subsystem:

* :mod:`repro.faults.events` — the typed fault-event DSL (``Partition``,
  ``Heal``, ``Crash``, ``Recover``, ``MessageLoss``, ``Duplicate``,
  ``DelaySpike``, ``Churn``, the Byzantine nemeses ``BecomeByzantine``/
  ``BecomeCorrect``, and the membership events ``Join``/``Leave``) with
  :class:`Targets` selectors;
* :class:`FaultScheduleConfig` — the frozen, serialisable timeline carried by
  :class:`~repro.config.ExperimentConfig`;
* :class:`FaultInjector` — executes a schedule from simulator timers and
  condenses the resilience report flowing into ``RunResult.faults``;
* :func:`register_fault` — the plugin registry, so third-party fault kinds
  participate in schedules and serialisation without core edits.

Build schedules through the scenario builder
(``Scenario.hashchain().crash(at=10, until=30)``) or directly::

    from repro.faults import Crash, Partition, Targets, FaultScheduleConfig

    schedule = FaultScheduleConfig(events=(
        Partition(at=10.0, until=25.0, group=Targets(role="servers", count=3)),
        Crash(at=30.0, until=40.0, targets=Targets(nodes=("server-0",))),
    ))
"""

from __future__ import annotations

from .events import (
    BecomeByzantine,
    BecomeCorrect,
    Churn,
    Crash,
    DelaySpike,
    Duplicate,
    FaultEvent,
    Heal,
    Join,
    Leave,
    MessageLoss,
    Partition,
    Recover,
    Targets,
)
from .injector import FaultContext, FaultInjector
from .plugins import fault_names, get_fault, has_fault, register_fault, unregister_fault
from .schedule import (
    DEFAULT_AVAILABILITY_WINDOW,
    FaultScheduleConfig,
    validate_fault_budget,
)

__all__ = [
    "BecomeByzantine",
    "BecomeCorrect",
    "Churn",
    "Crash",
    "DelaySpike",
    "Duplicate",
    "FaultContext",
    "FaultEvent",
    "FaultInjector",
    "FaultScheduleConfig",
    "DEFAULT_AVAILABILITY_WINDOW",
    "Heal",
    "Join",
    "Leave",
    "MessageLoss",
    "Partition",
    "Recover",
    "Targets",
    "fault_names",
    "get_fault",
    "has_fault",
    "register_fault",
    "unregister_fault",
    "validate_fault_budget",
]
