"""Pluggable deployment components: algorithm, ledger-backend, and latency
registries.

``build_deployment`` used to hard-code an if/elif algorithm funnel, two
wired-in ledger backends, and a fixed LAN latency profile.  The registries
here turn each of those seams into a lookup table that user code can extend
*without editing core*::

    from repro.topology import register_algorithm

    @register_algorithm("myalgo")
    def _build(ctx, name, keypair):
        return MyServer(name, ctx.sim, ctx.config.setchain, ctx.scheme,
                        keypair, metrics=ctx.metrics)

    config = Scenario("myalgo").servers(4).build()   # validated via the registry

The built-in entries (Vanilla/Compresschain/Hashchain and their light
variants, CometBFT/Ideal, lan/wan) are registered by
:mod:`repro.topology.builtins`, loaded lazily on the first registry access —
the same deferred-population pattern as the scenario catalog — so importing
this module stays dependency-free and cycle-free.

Lookup misses raise :class:`~repro.errors.ConfigurationError` with a
did-you-mean hint, matching the builder/registry contract elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generic, Protocol, TypeVar, runtime_checkable

from ..errors import ConfigurationError, did_you_mean

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.metrics import MetricsCollector
    from ..config import ExperimentConfig
    from ..core.base import BaseSetchainServer
    from ..crypto.keys import KeyPair
    from ..crypto.signatures import SignatureScheme
    from ..ledger.abci import LedgerInterface
    from ..net.latency import LatencyModel
    from ..net.network import Network
    from ..sim.scheduler import Simulator


# -- typed backend seam --------------------------------------------------------

@runtime_checkable
class LedgerBackend(Protocol):
    """What a deployment needs from the ledger substrate: a way to start it.

    Replaces the old ``ledger_backend: object`` field plus
    ``backend.start()  # type: ignore[attr-defined]`` seam in
    :class:`~repro.core.deployment.Deployment`.  Backends that expose more
    (e.g. CometBFT's ``nodes`` mapping for the mempool-stage CDFs) are
    duck-typed by the analyses that know about them.
    """

    def start(self) -> None:
        """Begin block production / consensus."""
        ...  # pragma: no cover - protocol


@dataclass
class DeploymentContext:
    """Build-time objects shared by every factory constructing one deployment."""

    sim: "Simulator"
    network: "Network"
    config: "ExperimentConfig"
    scheme: "SignatureScheme"
    metrics: "MetricsCollector"
    #: Per-algorithm shared state, e.g. the hashchain-light out-of-band batch
    #: store.  Keyed first by algorithm name so distinct algorithm groups in a
    #: heterogeneous cluster never alias each other's state.
    _shared: dict[str, dict[str, object]] = field(default_factory=dict)

    def shared_state(self, algorithm: str) -> dict[str, object]:
        """Mutable state shared by every server of ``algorithm`` in this build."""
        return self._shared.setdefault(algorithm, {})


#: Builds one Setchain server.  The factory must not register the server with
#: the network or connect its ledger — the deployment composes those stages.
AlgorithmFactory = Callable[
    [DeploymentContext, str, "KeyPair"], "BaseSetchainServer"]

#: Builds the ledger substrate: returns the backend plus one
#: :class:`~repro.ledger.abci.LedgerInterface` handle per server.
LedgerBackendFactory = Callable[
    ["Simulator", "Network", int, "ExperimentConfig"],
    "tuple[LedgerBackend, list[LedgerInterface]]"]

#: Builds a base latency model for the given artificial ``network_delay``
#: (seconds) — the Table 1 knob layered on top of the profile.
LatencyProfileFactory = Callable[[float], "LatencyModel"]

F = TypeVar("F")


class PluginRegistry(Generic[F]):
    """A named factory table with did-you-mean lookups and lazy builtins.

    ``loader`` is invoked before every table access so each registry can
    populate its built-in entries on first use; the fault-event registry in
    :mod:`repro.faults.plugins` reuses this class with its own loader.
    """

    def __init__(self, kind: str,
                 loader: "Callable[[], None] | None" = None) -> None:
        self.kind = kind
        self._factories: dict[str, F] = {}
        self._loader = loader

    def _ensure(self) -> None:
        if self._loader is not None:
            self._loader()

    def register(self, name: str, factory: F, *, replace: bool = False) -> F:
        if not name:
            raise ConfigurationError(f"{self.kind} name cannot be empty")
        self._ensure()
        if name in self._factories and not replace:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered "
                "(pass replace=True to overwrite)")
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests un-doing registrations)."""
        self._ensure()
        self._factories.pop(name, None)

    def get(self, name: str) -> F:
        self._ensure()
        factory = self._factories.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}"
                + did_you_mean(name, list(self._factories)))
        return factory

    def names(self) -> list[str]:
        self._ensure()
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        self._ensure()
        return name in self._factories


def once(loader: "Callable[[], None]") -> "Callable[[], None]":
    """Wrap a registry loader so it runs exactly once and never re-enters.

    Loaders import a builtins module whose registrations call back into the
    registry (and hence the loader); the loading flag breaks that recursion,
    and the loaded flag makes every later access a cheap no-op.  Shared by
    the topology registries here and the fault registry in
    :mod:`repro.faults.plugins` — one loader can safely back several
    registries.
    """
    state = {"loaded": False, "loading": False}

    def ensure() -> None:
        if state["loaded"] or state["loading"]:
            return
        state["loading"] = True
        try:
            loader()
        finally:
            state["loading"] = False
        state["loaded"] = True

    return ensure


def _load_builtins() -> None:
    from . import builtins  # noqa: F401  (imported for its side effect)


#: Load the built-in registrations on first registry access.
_ensure_builtins = once(_load_builtins)


_ALGORITHMS: PluginRegistry[AlgorithmFactory] = PluginRegistry(
    "algorithm", loader=_ensure_builtins)
_LEDGER_BACKENDS: PluginRegistry[LedgerBackendFactory] = (
    PluginRegistry("ledger backend", loader=_ensure_builtins))
_LATENCY_PROFILES: PluginRegistry[LatencyProfileFactory] = (
    PluginRegistry("latency profile", loader=_ensure_builtins))


# -- decorators ----------------------------------------------------------------

def register_algorithm(name: str, *, replace: bool = False):
    """Decorator registering an :data:`AlgorithmFactory` under ``name``.

    Registered names become valid ``ExperimentConfig.algorithm`` /
    ``Scenario(...)`` / ``RegionSpec.algorithm`` values immediately.
    """
    def decorator(factory: AlgorithmFactory) -> AlgorithmFactory:
        return _ALGORITHMS.register(name, factory, replace=replace)
    return decorator


def register_ledger_backend(name: str, *, replace: bool = False):
    """Decorator registering a :data:`LedgerBackendFactory` under ``name``."""
    def decorator(factory: LedgerBackendFactory) -> LedgerBackendFactory:
        return _LEDGER_BACKENDS.register(name, factory, replace=replace)
    return decorator


def register_latency_profile(name: str, *, replace: bool = False):
    """Decorator registering a :data:`LatencyProfileFactory` under ``name``."""
    def decorator(factory: LatencyProfileFactory) -> LatencyProfileFactory:
        return _LATENCY_PROFILES.register(name, factory, replace=replace)
    return decorator


# -- lookups -------------------------------------------------------------------

def get_algorithm(name: str) -> AlgorithmFactory:
    return _ALGORITHMS.get(name)


def get_ledger_backend(name: str) -> LedgerBackendFactory:
    return _LEDGER_BACKENDS.get(name)


def get_latency_profile(name: str) -> LatencyProfileFactory:
    return _LATENCY_PROFILES.get(name)


def algorithm_names() -> list[str]:
    return _ALGORITHMS.names()


def ledger_backend_names() -> list[str]:
    return _LEDGER_BACKENDS.names()


def latency_profile_names() -> list[str]:
    return _LATENCY_PROFILES.names()


def has_algorithm(name: str) -> bool:
    return name in _ALGORITHMS


def has_ledger_backend(name: str) -> bool:
    return name in _LEDGER_BACKENDS


def has_latency_profile(name: str) -> bool:
    return name in _LATENCY_PROFILES


def unregister_algorithm(name: str) -> None:
    _ALGORITHMS.unregister(name)


def unregister_ledger_backend(name: str) -> None:
    _LEDGER_BACKENDS.unregister(name)


def unregister_latency_profile(name: str) -> None:
    _LATENCY_PROFILES.unregister(name)
