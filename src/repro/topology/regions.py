"""Heterogeneous multi-region deployment topologies.

The paper's evaluation platform is a homogeneous LAN cluster: ``n`` identical
(client, server, ledger-node) triples behind one latency profile.  A
:class:`TopologyConfig` generalises that to named *regions*, each holding a
slice of the servers and optionally running a different registered algorithm,
with intra-region links drawn from a registered latency profile and
inter-region links modelled by a per-pair delay matrix plus jitter (following
the heterogeneous communication-quality-class modelling of arXiv:2404.04894).

A config with ``topology=None`` is exactly the legacy homogeneous deployment;
everything here is additive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RegionSpec:
    """One named region: a server count and an optional algorithm override."""

    name: str
    servers: int
    #: Algorithm run by this region's servers; ``None`` inherits the
    #: experiment-level algorithm.  Must be a registered algorithm name.
    algorithm: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("region name cannot be empty")
        if self.servers < 1:
            raise ConfigurationError(
                f"region {self.name!r} needs at least one server")


@dataclass(frozen=True)
class TopologyConfig:
    """Named regions plus the link-quality model between and within them."""

    regions: tuple[RegionSpec, ...]
    #: Registered latency profile drawn for intra-region links.
    intra_profile: str = "lan"
    #: Base one-way delay added on inter-region links (seconds).
    inter_delay: float = 0.0
    #: Uniform jitter width added on inter-region links (seconds): each
    #: cross-region message draws an extra delay in ``[0, inter_jitter]``.
    inter_jitter: float = 0.0
    #: Per-pair one-way delay overrides ``(region_a, region_b, seconds)``,
    #: symmetric; pairs not listed fall back to ``inter_delay``.
    links: tuple[tuple[str, str, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        regions = tuple(self.regions)
        object.__setattr__(self, "regions", tuple(
            r if isinstance(r, RegionSpec) else RegionSpec(**r)
            for r in regions))
        object.__setattr__(self, "links", tuple(
            (str(a), str(b), float(d)) for a, b, d in self.links))
        if not self.regions:
            raise ConfigurationError("a topology needs at least one region")
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate region names: {names}")
        if self.inter_delay < 0 or self.inter_jitter < 0:
            raise ConfigurationError(
                "inter-region delay and jitter cannot be negative")
        known = set(names)
        seen_pairs: set[frozenset[str]] = set()
        for a, b, delay in self.links:
            if a not in known or b not in known:
                raise ConfigurationError(
                    f"link ({a!r}, {b!r}) references an unknown region; "
                    f"regions are {sorted(known)}")
            if a == b:
                raise ConfigurationError(
                    f"link ({a!r}, {b!r}) must connect two distinct regions")
            if delay < 0:
                raise ConfigurationError("link delays cannot be negative")
            pair = frozenset((a, b))
            if pair in seen_pairs:
                raise ConfigurationError(
                    f"duplicate link for regions {sorted(pair)}: links are "
                    "symmetric, declare each pair once")
            seen_pairs.add(pair)

    # -- derived views ---------------------------------------------------------

    @property
    def n_servers(self) -> int:
        """Total servers across all regions."""
        return sum(region.servers for region in self.regions)

    @property
    def region_names(self) -> tuple[str, ...]:
        return tuple(region.name for region in self.regions)

    def assignments(self, default_algorithm: str) -> list[tuple[str, str]]:
        """Per-server ``(region, algorithm)`` in deployment index order."""
        out: list[tuple[str, str]] = []
        for region in self.regions:
            algorithm = region.algorithm or default_algorithm
            out.extend((region.name, algorithm) for _ in range(region.servers))
        return out

    def algorithms(self, default_algorithm: str) -> list[str]:
        """Distinct algorithms in play, in first-appearance order."""
        seen: list[str] = []
        for region in self.regions:
            algorithm = region.algorithm or default_algorithm
            if algorithm not in seen:
                seen.append(algorithm)
        return seen

    def is_heterogeneous(self, default_algorithm: str) -> bool:
        return len(self.algorithms(default_algorithm)) > 1

    def link_delay(self, region_a: str, region_b: str) -> float:
        """One-way inter-region base delay for the (symmetric) pair."""
        if region_a == region_b:
            return 0.0
        for a, b, delay in self.links:
            if {a, b} == {region_a, region_b}:
                return delay
        return self.inter_delay

    # -- serialisation (the RunResult config echo) -----------------------------

    def to_dict(self) -> dict[str, Any]:
        """Pure-JSON-types projection that :meth:`from_dict` inverts."""
        return {
            "regions": [{"name": r.name, "servers": r.servers,
                         "algorithm": r.algorithm} for r in self.regions],
            "intra_profile": self.intra_profile,
            "inter_delay": self.inter_delay,
            "inter_jitter": self.inter_jitter,
            "links": [list(link) for link in self.links],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologyConfig":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"topology must be an object, got {type(data).__name__}")
        try:
            regions = tuple(
                RegionSpec(name=str(r["name"]), servers=int(r["servers"]),
                           algorithm=(None if r.get("algorithm") is None
                                      else str(r["algorithm"])))
                for r in data["regions"])
            links = tuple((str(a), str(b), float(d))
                          for a, b, d in data.get("links", ()))
            return cls(regions=regions,
                       intra_profile=str(data.get("intra_profile", "lan")),
                       inter_delay=float(data.get("inter_delay", 0.0)),
                       inter_jitter=float(data.get("inter_jitter", 0.0)),
                       links=links)
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed topology echo: {error}") from error


def single_region(name: str, servers: int, *, algorithm: str | None = None,
                  intra_profile: str = "lan") -> TopologyConfig:
    """A one-region topology (homogeneous links, but profile-selectable)."""
    return TopologyConfig(regions=(RegionSpec(name, servers, algorithm),),
                          intra_profile=intra_profile)


def evenly_split(region_names: Sequence[str], n_servers: int,
                 **kwargs: Any) -> TopologyConfig:
    """Split ``n_servers`` across ``region_names`` as evenly as possible.

    Earlier regions absorb the remainder, so the split is deterministic.
    """
    if not region_names:
        raise ConfigurationError("need at least one region name")
    if n_servers < len(region_names):
        raise ConfigurationError(
            f"cannot place {n_servers} server(s) in {len(region_names)} regions")
    base, remainder = divmod(n_servers, len(region_names))
    regions = tuple(
        RegionSpec(name, base + (1 if index < remainder else 0))
        for index, name in enumerate(region_names))
    return TopologyConfig(regions=regions, **kwargs)
