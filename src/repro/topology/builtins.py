"""Built-in registry entries: the paper's algorithms, backends, and profiles.

Imported lazily by :mod:`repro.topology.plugins` on first registry access so
the registry machinery itself never drags in the core/ledger/net layers.
Each factory constructs exactly what ``build_deployment``'s old if/elif
funnel built, so homogeneous deployments are byte-identical before and after
the registry refactor.
"""

from __future__ import annotations

from ..compressor.factory import make_compressor
from ..config import ExperimentConfig
from ..core.batch_store import BatchStore
from ..core.compresschain import CompresschainServer
from ..core.hashchain import HashchainServer
from ..core.vanilla import VanillaServer
from ..crypto.keys import KeyPair
from ..ledger.abci import LedgerInterface
from ..ledger.cometbft.engine import CometBFTNetwork
from ..ledger.ideal import IdealLedger
from ..net.latency import LatencyModel, lan_profile, wan_profile
from ..net.network import Network
from ..sim.scheduler import Simulator
from .plugins import (
    DeploymentContext,
    LedgerBackend,
    register_algorithm,
    register_latency_profile,
    register_ledger_backend,
)

# -- algorithms ----------------------------------------------------------------


@register_algorithm("vanilla")
def _vanilla(ctx: DeploymentContext, name: str, keypair: KeyPair) -> VanillaServer:
    return VanillaServer(name, ctx.sim, ctx.config.setchain, ctx.scheme,
                         keypair, metrics=ctx.metrics)


@register_algorithm("compresschain")
def _compresschain(ctx: DeploymentContext, name: str,
                   keypair: KeyPair) -> CompresschainServer:
    compressor = make_compressor(ctx.config.setchain.compressor)
    return CompresschainServer(name, ctx.sim, ctx.config.setchain, ctx.scheme,
                               keypair, compressor, metrics=ctx.metrics,
                               light=False)


@register_algorithm("compresschain-light")
def _compresschain_light(ctx: DeploymentContext, name: str,
                         keypair: KeyPair) -> CompresschainServer:
    compressor = make_compressor(ctx.config.setchain.compressor)
    return CompresschainServer(name, ctx.sim, ctx.config.setchain, ctx.scheme,
                               keypair, compressor, metrics=ctx.metrics,
                               light=True)


@register_algorithm("hashchain")
def _hashchain(ctx: DeploymentContext, name: str,
               keypair: KeyPair) -> HashchainServer:
    return HashchainServer(name, ctx.sim, ctx.config.setchain, ctx.scheme,
                           keypair, metrics=ctx.metrics, light=False,
                           shared_store=None)


@register_algorithm("hashchain-light")
def _hashchain_light(ctx: DeploymentContext, name: str,
                     keypair: KeyPair) -> HashchainServer:
    # All hashchain-light servers of one deployment share the out-of-band
    # batch store (the Fig. 2 ablation's zero-cost content sharing); distinct
    # algorithm groups in a heterogeneous cluster each get their own store.
    shared = ctx.shared_state("hashchain-light")
    store = shared.setdefault("batch_store", BatchStore())
    assert isinstance(store, BatchStore)
    return HashchainServer(name, ctx.sim, ctx.config.setchain, ctx.scheme,
                           keypair, metrics=ctx.metrics, light=True,
                           shared_store=store)


# -- ledger backends -----------------------------------------------------------


@register_ledger_backend("cometbft")
def _cometbft(sim: Simulator, network: Network, n: int,
              config: ExperimentConfig) -> tuple[LedgerBackend, list[LedgerInterface]]:
    cometbft = CometBFTNetwork(sim, network, n, config.ledger)
    return cometbft, list(cometbft.node_list())


@register_ledger_backend("ideal")
def _ideal(sim: Simulator, network: Network, n: int,
           config: ExperimentConfig) -> tuple[LedgerBackend, list[LedgerInterface]]:
    ideal = IdealLedger(sim, config.ledger)
    return ideal, [ideal.handle_for(f"server-{i}") for i in range(n)]


# The durable service-mode backend registers itself on import ("sqlite");
# importing it here makes the name resolvable from any config, not only after
# service entry points have run.
from ..service import persistence as _service_persistence  # noqa: E402,F401


# -- latency profiles ----------------------------------------------------------


@register_latency_profile("lan")
def _lan(network_delay: float) -> LatencyModel:
    return lan_profile(network_delay=network_delay)


@register_latency_profile("wan")
def _wan(network_delay: float) -> LatencyModel:
    return wan_profile(network_delay=network_delay)
