"""Pluggable deployment topology: registries + multi-region configs.

Two layers live here:

* :mod:`repro.topology.plugins` — the algorithm / ledger-backend / latency
  registries (``@register_algorithm`` & friends) and the typed
  :class:`LedgerBackend` protocol that ``Deployment`` builds against;
* :mod:`repro.topology.regions` — :class:`TopologyConfig` /
  :class:`RegionSpec`, the declarative description of heterogeneous
  multi-region clusters consumed by ``build_deployment`` and the
  ``Scenario`` builder's ``.region()/.wan()/.mixed()`` knobs.
"""

from .plugins import (
    DeploymentContext,
    LedgerBackend,
    algorithm_names,
    get_algorithm,
    get_latency_profile,
    get_ledger_backend,
    has_algorithm,
    has_latency_profile,
    has_ledger_backend,
    latency_profile_names,
    ledger_backend_names,
    register_algorithm,
    register_latency_profile,
    register_ledger_backend,
    unregister_algorithm,
    unregister_latency_profile,
    unregister_ledger_backend,
)
from .regions import RegionSpec, TopologyConfig, evenly_split, single_region

__all__ = [
    "DeploymentContext",
    "LedgerBackend",
    "RegionSpec",
    "TopologyConfig",
    "evenly_split",
    "single_region",
    "algorithm_names",
    "ledger_backend_names",
    "latency_profile_names",
    "get_algorithm",
    "get_ledger_backend",
    "get_latency_profile",
    "has_algorithm",
    "has_ledger_backend",
    "has_latency_profile",
    "register_algorithm",
    "register_ledger_backend",
    "register_latency_profile",
    "unregister_algorithm",
    "unregister_ledger_backend",
    "unregister_latency_profile",
]
