"""Wall-clock benchmark harness — the repository's performance trajectory.

The simulation's own speed bounds how many scenarios, seeds, and server
counts the reproduction can explore, so this package measures it the same way
the paper measures Setchain: a pinned scenario set (``bench-smoke``), run
with pinned seeds, reported as wall-clock seconds plus two rates — simulator
events per wall-second and committed elements per wall-second.

Results are written as ``BENCH_*.json`` artifacts (see
:data:`repro.bench.runner.BENCH_SCHEMA_VERSION`) so successive PRs can be
diffed: ``python -m repro.bench compare BEFORE.json AFTER.json`` renders the
per-scenario speedups.  ``BENCH_PR2.json`` at the repository root seeds the
trajectory.
"""

from .runner import (
    BENCH_MILLION,
    BENCH_MILLION_SMOKE,
    BENCH_SCHEMA_VERSION,
    BENCH_SMOKE,
    BenchCase,
    BenchRecord,
    compare_benches,
    load_bench,
    run_bench,
    run_case,
    write_bench,
)

__all__ = [
    "BENCH_MILLION",
    "BENCH_MILLION_SMOKE",
    "BENCH_SCHEMA_VERSION",
    "BENCH_SMOKE",
    "BenchCase",
    "BenchRecord",
    "compare_benches",
    "load_bench",
    "run_bench",
    "run_case",
    "write_bench",
]
