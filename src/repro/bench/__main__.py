"""``python -m repro.bench`` — run the pinned benchmark set or compare artifacts.

Usage::

    python -m repro.bench [run] [--set smoke|million|million-smoke]
                          [--out BENCH.json] [--label after]
                          [--jobs N|auto] [--repeat K] [--trace-sample F]
    python -m repro.bench compare BEFORE.json AFTER.json [--out BENCH_PR2.json]
                          [--max-regression 0.02]
    python -m repro.bench profile SCENARIO [--seed N] [--scale S]
                          [--sort cumulative|tottime|...] [--limit N]
                          [--out-collapsed stacks.txt]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from ..api.parallel import jobs_arg
from ..errors import ReproError
from .runner import (
    BENCH_MILLION,
    BENCH_MILLION_SMOKE,
    BENCH_SHARD,
    BENCH_SMOKE,
    compare_benches,
    load_bench,
    run_bench,
    write_bench,
)

#: ``--set`` name -> (pinned cases, artifact ``set`` field).
BENCH_SETS = {
    "smoke": (BENCH_SMOKE, "bench-smoke"),
    "million": (BENCH_MILLION, "bench-million"),
    "million-smoke": (BENCH_MILLION_SMOKE, "million-smoke"),
    "shard": (BENCH_SHARD, "bench-shard"),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure wall-clock performance on the pinned bench-smoke set.")
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run the bench-smoke set (the default)")
    _add_run_options(run_p)

    cmp_p = sub.add_parser("compare",
                           help="merge two bench artifacts into a before/after doc")
    cmp_p.add_argument("before", help="baseline BENCH_*.json artifact")
    cmp_p.add_argument("after", help="new BENCH_*.json artifact")
    cmp_p.add_argument("--out", metavar="PATH",
                       help="write the merged trajectory document here")
    cmp_p.add_argument("--max-regression", type=float, metavar="FRAC",
                       help="fail (exit 1) when the whole-set wall time got "
                            "slower by more than FRAC (0.02 = 2%%); "
                            "per-scenario slowdowns past the threshold are "
                            "warnings (short cases are too noisy to gate "
                            "individually)")

    prof_p = sub.add_parser(
        "profile", help="cProfile one scenario run and print the hottest functions")
    prof_p.add_argument("scenario",
                        help="registered scenario name — any entry works, "
                             "including the million set (e.g. "
                             "bench/million-smoke-hashchain)")
    prof_p.add_argument("--seed", type=int, default=1, help="run seed (default 1)")
    prof_p.add_argument("--scale", type=float, default=1.0,
                        help="scale factor passed to the runner (default 1.0)")
    prof_p.add_argument("--sort", default="tottime",
                        help="pstats sort key: tottime, cumulative, calls, ... "
                             "(default tottime)")
    prof_p.add_argument("--limit", type=_positive_int, default=25,
                        help="number of rows to print (default 25)")
    prof_p.add_argument("--out", metavar="PATH",
                        help="also dump raw pstats data here (for snakeviz etc.)")
    prof_p.add_argument("--out-collapsed", metavar="PATH",
                        help="also write caller;callee collapsed stacks here "
                             "(feed to flamegraph.pl / speedscope)")
    return parser


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", metavar="PATH", default="results/BENCH.json",
                        help="artifact path (default: results/BENCH.json)")
    parser.add_argument("--label", default="",
                        help="free-form label stored in the artifact")
    parser.add_argument("--jobs", type=jobs_arg, default=1, metavar="N|auto",
                        help="worker processes (default 1; 'auto' = all cores)")
    parser.add_argument("--repeat", type=_positive_int, default=1,
                        help="runs per case, keeping the fastest (default 1)")
    parser.add_argument("--set", choices=sorted(BENCH_SETS), default="smoke",
                        help="which pinned case set to run (default smoke)")
    parser.add_argument("--contains", metavar="TEXT",
                        help="only cases whose scenario name contains TEXT "
                             "(partial artifacts are not comparable trajectories)")
    parser.add_argument("--trace-sample", type=float, default=None, metavar="F",
                        help="run with lifecycle tracing at this sample rate "
                             "(for measuring tracing overhead; default off)")


def _cmd_run(args: argparse.Namespace) -> int:
    cases, bench_set = BENCH_SETS[args.set]
    if args.contains:
        full = len(cases)
        cases = tuple(c for c in cases if args.contains in c.scenario)
        if not cases:
            print(f"no bench cases match {args.contains!r}", file=sys.stderr)
            return 1
        if len(cases) < full:
            # A filtered artifact must not masquerade as the pinned set —
            # whole-set trajectory comparisons would silently shrink to the
            # intersection.
            bench_set = f"{bench_set}/partial"
    if args.trace_sample is not None:
        # Traced wall times answer "how much does tracing cost", not "did the
        # code get faster" — keep them out of whole-set trajectories too.
        bench_set = f"{bench_set}/traced"
    records = run_bench(cases, jobs=args.jobs, repeat=args.repeat,
                        trace_sample=args.trace_sample)
    for record in records:
        line = (f"{record.scenario:28s} wall={record.wall_s:8.3f}s  "
                f"events/s={record.events_per_s:10.1f}  "
                f"el/s={record.elements_per_s:8.1f}")
        if record.sim_elements_per_s is not None:
            line += f"  sim-el/s={record.sim_elements_per_s:8.1f}"
        print(line)
    path = write_bench(records, args.out, label=args.label, bench_set=bench_set)
    print(f"wrote {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    before, after = load_bench(args.before), load_bench(args.after)
    merged = compare_benches(before, after)
    for scenario, ratio in merged["speedup"].items():
        print(f"{scenario:28s} speedup {ratio:.2f}x")
    print(f"{'(whole set)':28s} speedup {merged['overall_wall_speedup']:.2f}x")
    if args.out:
        from pathlib import Path
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"wrote {target}")
    if args.max_regression is not None:
        # Gate on unrounded wall times (the stored ``speedup`` ratios are
        # rounded to 2 decimals — too coarse for a 2% threshold).  Only the
        # whole-set total fails the gate: individual cases run well under a
        # second, where scheduler noise dwarfs a 2% threshold, so per-case
        # slowdowns are surfaced as warnings only.
        before_by = {r["scenario"]: r["wall_s"] for r in before["results"]}
        after_by = {r["scenario"]: r["wall_s"] for r in after["results"]}
        shared = [name for name in before_by if name in after_by]
        for name in shared:
            regression = after_by[name] / max(before_by[name], 1e-9) - 1.0
            if regression > args.max_regression:
                print(f"warning: {name} slower by {regression:+.1%}",
                      file=sys.stderr)
        total_before = sum(before_by[name] for name in shared)
        total_after = sum(after_by[name] for name in shared)
        overall = total_after / max(total_before, 1e-9) - 1.0
        if overall > args.max_regression:
            print(f"regression: whole set slower by {overall:+.1%} "
                  f"(> {args.max_regression:.1%} allowed)", file=sys.stderr)
            return 1
        print(f"regression gate passed (whole set {overall:+.1%}, "
              f"limit {args.max_regression:.1%})")
    return 0


def _frame_name(func: tuple) -> str:
    """Render a pstats function key as one flamegraph frame.

    Semicolons separate frames in the collapsed format, so they (and spaces,
    which separate the frame stack from the sample count) must not appear
    inside a name.
    """
    filename, lineno, funcname = func
    if filename == "~":  # C builtins profile as ('~', 0, '<built-in ...>')
        label = funcname
    else:
        from pathlib import Path
        label = f"{Path(filename).name}:{lineno}:{funcname}"
    return label.replace(";", ",").replace(" ", "_")


def _write_collapsed(stats: "pstats.Stats", path: str) -> "Path":
    """Write flamegraph-collapsed stacks (``caller;callee usec`` lines).

    cProfile keeps caller/callee edges, not full stacks, so the output is
    two frames deep: each line charges a callee's internal time (µs) to one
    caller edge; root frames (no recorded caller) appear alone.  That is
    enough for ``flamegraph.pl`` or speedscope to render a useful profile
    without any third-party tooling.
    """
    from pathlib import Path
    lines = []
    for func, (cc, nc, tt, ct, callers) in stats.stats.items():
        name = _frame_name(func)
        if not callers:
            usec = int(round(tt * 1e6))
            if usec > 0:
                lines.append(f"{name} {usec}")
            continue
        for caller, (c_cc, c_nc, c_tt, c_ct) in callers.items():
            usec = int(round(c_tt * 1e6))
            if usec > 0:
                lines.append(f"{_frame_name(caller)};{name} {usec}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text("\n".join(sorted(lines)) + "\n")
    return target


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from ..api.registry import get_scenario
    from ..experiments.runner import run_scenario

    config = get_scenario(args.scenario)
    profiler = cProfile.Profile()
    profiler.enable()
    outcome = run_scenario(config, scale=args.scale, seed=args.seed)
    profiler.disable()
    committed = outcome.metrics.committed_count
    print(f"{args.scenario}: committed={committed} "
          f"events={outcome.deployment.sim.events_executed}")
    try:
        stats = pstats.Stats(profiler).sort_stats(args.sort)
    except KeyError:
        valid = ", ".join(sorted(k.value for k in pstats.SortKey))
        print(f"error: unknown --sort key {args.sort!r} (valid: {valid})",
              file=sys.stderr)
        return 1
    stats.print_stats(args.limit)
    if args.out:
        from pathlib import Path
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        stats.dump_stats(str(target))
        print(f"wrote {target}")
    if args.out_collapsed:
        target = _write_collapsed(stats, args.out_collapsed)
        print(f"wrote {target}")
    return 0


_COMMANDS = {"compare": _cmd_compare, "profile": _cmd_profile}


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Bare `python -m repro.bench [--opts]` means `run` — but keep the
    # program-level --help reachable (it is what documents `compare`).
    if not argv:
        argv = ["run"]
    elif argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv.insert(0, "run")
    args = _build_parser().parse_args(argv)
    command = _COMMANDS.get(args.command, _cmd_run)
    try:
        return command(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
