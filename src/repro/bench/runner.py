"""Benchmark execution: pinned cases, measurement, artifacts, comparison.

A :class:`BenchCase` pins a registered scenario name to a seed (and optional
scale); :func:`run_case` times one end-to-end :func:`run_scenario` execution
and reduces it to a :class:`BenchRecord` — the five-field schema stored in
``BENCH_*.json`` artifacts::

    {"scenario": ..., "seed": ..., "wall_s": ...,
     "events_per_s": ..., "elements_per_s": ...}

``wall_s`` is the minimum over ``repeat`` runs (best-of, the standard
defence against scheduler noise); the rates are taken from that fastest run.
Simulation *outputs* are wall-clock independent — the same case always
commits the same elements — so a bench artifact doubles as a determinism
witness: ``events_per_s * wall_s`` must not drift between PRs unless the
simulation itself changed.
"""

from __future__ import annotations

import functools
import gc
import json
import multiprocessing
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError
from ..api.parallel import reset_run_counters
from ..api.registry import get_scenario

#: Bumped whenever the artifact layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark point: scenario name, seed, and repeat count."""

    scenario: str
    seed: int
    scale: float = 1.0


#: The pinned ``bench-smoke`` set (see the ``bench/...`` catalog entries).
#: Seeds are arbitrary but frozen: changing any line starts a new trajectory.
BENCH_SMOKE: tuple[BenchCase, ...] = (
    BenchCase("bench/hashchain-base", seed=1101),
    BenchCase("bench/hashchain-heavy", seed=1102),
    BenchCase("bench/compresschain", seed=1103),
    BenchCase("bench/vanilla", seed=1104),
    BenchCase("bench/hashchain-ed25519", seed=1105),
)

#: The ``bench-million`` set: one million injected elements per case, batched
#: algorithms only (vanilla's per-element ledger path takes minutes at this
#: scale — run ``bench/million-vanilla`` explicitly when you want the
#: baseline contrast).
BENCH_MILLION: tuple[BenchCase, ...] = (
    BenchCase("bench/million-hashchain", seed=1201),
    BenchCase("bench/million-compresschain", seed=1202),
)

#: The CI-sized variant (100k elements per case, all three algorithms).
BENCH_MILLION_SMOKE: tuple[BenchCase, ...] = (
    BenchCase("bench/million-smoke-hashchain", seed=1301),
    BenchCase("bench/million-smoke-compresschain", seed=1302),
    BenchCase("bench/million-smoke-vanilla", seed=1303),
)

#: The ``bench-shard`` scale-out set: the same 3500 el/s workload against
#: 1/2/4/8 shards (see the ``shard/scale/...`` catalog entries).  The
#: headline lives in the *simulated* committed throughput
#: (``sim_elements_per_s``): four shards must sustain at least 3x the
#: one-shard committed rate.  Wall-clock columns measure the single-process
#: simulator, which does the same total work regardless of shard count.
BENCH_SHARD: tuple[BenchCase, ...] = (
    BenchCase("shard/scale/s1", seed=1401),
    BenchCase("shard/scale/s2", seed=1402),
    BenchCase("shard/scale/s4", seed=1403),
    BenchCase("shard/scale/s8", seed=1404),
)


@dataclass(frozen=True)
class BenchRecord:
    """One measured benchmark point (the ``BENCH_*.json`` result schema).

    ``committed`` and ``sim_elements_per_s`` are additive (schema version
    unchanged): the committed-element count and the committed throughput in
    *simulated* time — ``committed / sim.now`` at the end of the run.  Wall
    rates measure the simulator; the simulated rate measures the modelled
    system, which is what the sharding scale-out claim is about.
    """

    scenario: str
    seed: int
    wall_s: float
    events_per_s: float
    elements_per_s: float
    committed: int | None = None
    sim_elements_per_s: float | None = None


def run_case(case: BenchCase, repeat: int = 1,
             trace_sample: float | None = None) -> BenchRecord:
    """Run one case ``repeat`` times and keep the fastest execution.

    Cyclic garbage collection is suspended for the timed region: a
    million-element run keeps millions of live objects, and every gen-2
    collection rescans all of them, turning the measurement superlinear.
    The simulation allocates no reference cycles on its hot paths, so the
    deferred collection happens once, after timing.

    ``trace_sample`` runs the case with lifecycle tracing enabled — the
    knob behind the tracing-overhead acceptance check (traced wall time over
    untraced wall time for the same case).
    """
    if repeat < 1:
        raise ConfigurationError("bench repeat must be at least 1")
    config = get_scenario(case.scenario)
    if trace_sample is not None:
        config = config.with_overrides(trace_sample=trace_sample)
    best: tuple[float, int, int, float] | None = None  # (wall, events, committed, sim_now)
    gc_was_enabled = gc.isenabled()
    for _ in range(repeat):
        from ..experiments.runner import run_scenario
        reset_run_counters()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            outcome = run_scenario(config, scale=case.scale, seed=case.seed)
            wall = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        events = outcome.deployment.sim.events_executed
        committed = outcome.metrics.committed_count
        sim_now = outcome.deployment.sim.now
        del outcome
        gc.collect()
        if best is None or wall < best[0]:
            best = (wall, events, committed, sim_now)
    wall, events, committed, sim_now = best
    wall = max(wall, 1e-9)
    return BenchRecord(scenario=case.scenario, seed=case.seed,
                       wall_s=round(wall, 4),
                       events_per_s=round(events / wall, 1),
                       elements_per_s=round(committed / wall, 1),
                       committed=committed,
                       sim_elements_per_s=round(committed / max(sim_now, 1e-9), 1))


def run_bench(cases: Sequence[BenchCase] = BENCH_SMOKE, jobs: int = 1,
              repeat: int = 1,
              trace_sample: float | None = None) -> list[BenchRecord]:
    """Measure every case; ``jobs > 1`` fans out over worker processes.

    Parallel timing shares the machine between cases, so use ``jobs 1`` when
    absolute numbers matter and ``--jobs auto`` for quick CI trend lines.
    """
    cases = list(cases)
    worker = functools.partial(run_case, repeat=repeat,
                               trace_sample=trace_sample)
    if jobs <= 1 or len(cases) <= 1:
        return [worker(case) for case in cases]
    with multiprocessing.Pool(processes=min(jobs, len(cases))) as pool:
        return pool.map(worker, cases)


# -- artifacts ----------------------------------------------------------------

def write_bench(records: Sequence[BenchRecord], path: str | Path,
                label: str = "", bench_set: str = "bench-smoke") -> Path:
    """Write a ``BENCH_*.json`` artifact and return its path."""
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "set": bench_set,
        "label": label,
        "results": [asdict(record) for record in records],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read a ``BENCH_*.json`` artifact, validating the schema version."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid bench JSON in {path}: {error}") from error
    if not isinstance(data, Mapping) or "results" not in data:
        raise ConfigurationError(f"{path} is not a bench artifact (no results)")
    version = data.get("schema_version", BENCH_SCHEMA_VERSION)
    if version > BENCH_SCHEMA_VERSION:
        raise ConfigurationError(
            f"bench schema version {version} is newer than this library "
            f"understands ({BENCH_SCHEMA_VERSION})")
    return dict(data)


def compare_benches(before: Mapping[str, Any],
                    after: Mapping[str, Any]) -> dict[str, Any]:
    """Merge two bench artifacts into a before/after trajectory document.

    ``speedup`` maps each scenario present in both artifacts to
    ``before.wall_s / after.wall_s`` (>1 means the code got faster);
    ``overall_wall_speedup`` is the same ratio over the whole-set totals.
    """
    before_by = {r["scenario"]: r for r in before["results"]}
    after_by = {r["scenario"]: r for r in after["results"]}
    shared = [name for name in before_by if name in after_by]
    speedup = {name: round(before_by[name]["wall_s"]
                           / max(after_by[name]["wall_s"], 1e-9), 2)
               for name in shared}
    total_before = sum(before_by[name]["wall_s"] for name in shared)
    total_after = sum(after_by[name]["wall_s"] for name in shared)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "set": after.get("set", before.get("set", "bench-smoke")),
        "before": {"label": before.get("label", ""),
                   "results": list(before["results"])},
        "after": {"label": after.get("label", ""),
                  "results": list(after["results"])},
        "speedup": speedup,
        "overall_wall_speedup": round(total_before / max(total_after, 1e-9), 2),
    }
