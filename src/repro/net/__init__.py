"""Simulated network substrate.

Models the reliable, authenticated channels assumed by the system model
(paper §2): messages between correct processes are eventually delivered
exactly once, no spurious messages are generated, and delivery latency follows
a configurable model including the artificial ``network_delay`` of Table 1.

The network also supports fault injection (message drops towards/from chosen
nodes, partitions) used by Byzantine-behaviour tests — those faults are only
ever applied to *faulty* processes, preserving the reliability assumption for
correct ones.
"""

from .message import Message
from .latency import (
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    lan_profile,
    wan_profile,
)
from .network import Network
from .node import NetworkNode

__all__ = [
    "Message",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "lan_profile",
    "wan_profile",
    "Network",
    "NetworkNode",
]
