"""Latency models for message delivery.

Every model returns a one-way delivery delay in seconds.  The artificial
``network_delay`` knob from Table 1 is added uniformly on top of the base
model, exactly as the paper injects it into all server-to-server
communication.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from ..errors import ConfigurationError
from ..sim.rng import DeterministicRNG


class LatencyModel(ABC):
    """Base class: draw a one-way delay for a (sender, recipient, size) triple."""

    def __init__(self, extra_delay: float = 0.0) -> None:
        if extra_delay < 0:
            raise ConfigurationError("extra_delay cannot be negative")
        #: The artificial per-message delay added on top of the base model
        #: (the ``network_delay`` experiment parameter, in seconds).
        self.extra_delay = extra_delay

    def delay(self, rng: DeterministicRNG, sender: str, recipient: str,
              size_bytes: int) -> float:
        """Total one-way delay: base draw plus the artificial extra delay."""
        base = self._base_delay(rng, sender, recipient, size_bytes)
        if base < 0:
            raise ConfigurationError("latency model produced a negative delay")
        return base + self.extra_delay

    @abstractmethod
    def _base_delay(self, rng: DeterministicRNG, sender: str, recipient: str,
                    size_bytes: int) -> float:
        """Return the base one-way delay in seconds."""


class ConstantLatency(LatencyModel):
    """Fixed delay for every message; optional per-byte transmission cost."""

    def __init__(self, base: float = 0.001, per_byte: float = 0.0,
                 extra_delay: float = 0.0) -> None:
        super().__init__(extra_delay)
        if base < 0 or per_byte < 0:
            raise ConfigurationError("latency parameters cannot be negative")
        self.base = base
        self.per_byte = per_byte

    def _base_delay(self, rng: DeterministicRNG, sender: str, recipient: str,
                    size_bytes: int) -> float:
        return self.base + self.per_byte * size_bytes


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` plus per-byte transmission cost."""

    def __init__(self, low: float, high: float, per_byte: float = 0.0,
                 extra_delay: float = 0.0) -> None:
        super().__init__(extra_delay)
        if low < 0 or high < low:
            raise ConfigurationError("require 0 <= low <= high for UniformLatency")
        if per_byte < 0:
            raise ConfigurationError("per_byte cannot be negative")
        self.low = low
        self.high = high
        self.per_byte = per_byte

    def _base_delay(self, rng: DeterministicRNG, sender: str, recipient: str,
                    size_bytes: int) -> float:
        return rng.uniform(self.low, self.high) + self.per_byte * size_bytes


class RegionalLatency(LatencyModel):
    """Per-region link quality for geo-distributed deployments.

    Intra-region messages draw from a base *intra* model (typically the LAN
    profile).  Cross-region messages additionally pay a per-pair one-way
    delay — looked up in a symmetric delay matrix, defaulting to
    ``inter_delay`` — plus a uniform jitter draw in ``[0, inter_jitter]``,
    modelling the wider delay variation of wide-area links.  Nodes absent
    from ``region_of`` (or with no known peer region) are treated as
    co-located, so auxiliary processes keep LAN behaviour.
    """

    def __init__(self, region_of: Mapping[str, str], intra: LatencyModel,
                 inter_delay: float = 0.0, inter_jitter: float = 0.0,
                 links: Mapping[frozenset[str], float] | None = None,
                 extra_delay: float = 0.0) -> None:
        super().__init__(extra_delay)
        if inter_delay < 0 or inter_jitter < 0:
            raise ConfigurationError(
                "inter-region delay and jitter cannot be negative")
        self.region_of = dict(region_of)
        self.intra = intra
        self.inter_delay = inter_delay
        self.inter_jitter = inter_jitter
        self.links: dict[frozenset[str], float] = dict(links or {})
        for pair, delay in self.links.items():
            if len(pair) != 2:
                raise ConfigurationError(
                    f"link key {set(pair)!r} must name two distinct regions")
            if delay < 0:
                raise ConfigurationError("link delays cannot be negative")

    def pair_delay(self, region_a: str, region_b: str) -> float:
        """Base one-way delay between two regions (0 within a region)."""
        if region_a == region_b:
            return 0.0
        return self.links.get(frozenset((region_a, region_b)), self.inter_delay)

    def _base_delay(self, rng: DeterministicRNG, sender: str, recipient: str,
                    size_bytes: int) -> float:
        base = self.intra._base_delay(rng, sender, recipient, size_bytes)
        region_a = self.region_of.get(sender)
        region_b = self.region_of.get(recipient)
        if region_a is None or region_b is None or region_a == region_b:
            return base
        cross = self.pair_delay(region_a, region_b)
        if self.inter_jitter > 0:
            cross += rng.uniform(0.0, self.inter_jitter)
        return base + cross


#: Approximate cluster-network bandwidth used by the profiles: 1 Gbit/s.
_GIGABIT_PER_BYTE = 8.0 / 1e9


def lan_profile(network_delay: float = 0.0) -> LatencyModel:
    """Latency profile matching the paper's single-cluster deployment.

    Sub-millisecond base latency plus 1 Gbit/s serialisation cost, plus the
    artificial ``network_delay`` (seconds).
    """
    return UniformLatency(low=0.0002, high=0.0008, per_byte=_GIGABIT_PER_BYTE,
                          extra_delay=network_delay)


def wan_profile(network_delay: float = 0.0) -> LatencyModel:
    """A wide-area profile (tens of milliseconds) for the geo-distribution discussion."""
    return UniformLatency(low=0.030, high=0.080, per_byte=_GIGABIT_PER_BYTE,
                          extra_delay=network_delay)
