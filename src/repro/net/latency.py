"""Latency models for message delivery.

Every model returns a one-way delivery delay in seconds.  The artificial
``network_delay`` knob from Table 1 is added uniformly on top of the base
model, exactly as the paper injects it into all server-to-server
communication.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigurationError
from ..sim.rng import DeterministicRNG


class LatencyModel(ABC):
    """Base class: draw a one-way delay for a (sender, recipient, size) triple."""

    def __init__(self, extra_delay: float = 0.0) -> None:
        if extra_delay < 0:
            raise ConfigurationError("extra_delay cannot be negative")
        #: The artificial per-message delay added on top of the base model
        #: (the ``network_delay`` experiment parameter, in seconds).
        self.extra_delay = extra_delay

    def delay(self, rng: DeterministicRNG, sender: str, recipient: str,
              size_bytes: int) -> float:
        """Total one-way delay: base draw plus the artificial extra delay."""
        base = self._base_delay(rng, sender, recipient, size_bytes)
        if base < 0:
            raise ConfigurationError("latency model produced a negative delay")
        return base + self.extra_delay

    @abstractmethod
    def _base_delay(self, rng: DeterministicRNG, sender: str, recipient: str,
                    size_bytes: int) -> float:
        """Return the base one-way delay in seconds."""


class ConstantLatency(LatencyModel):
    """Fixed delay for every message; optional per-byte transmission cost."""

    def __init__(self, base: float = 0.001, per_byte: float = 0.0,
                 extra_delay: float = 0.0) -> None:
        super().__init__(extra_delay)
        if base < 0 or per_byte < 0:
            raise ConfigurationError("latency parameters cannot be negative")
        self.base = base
        self.per_byte = per_byte

    def _base_delay(self, rng: DeterministicRNG, sender: str, recipient: str,
                    size_bytes: int) -> float:
        return self.base + self.per_byte * size_bytes


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` plus per-byte transmission cost."""

    def __init__(self, low: float, high: float, per_byte: float = 0.0,
                 extra_delay: float = 0.0) -> None:
        super().__init__(extra_delay)
        if low < 0 or high < low:
            raise ConfigurationError("require 0 <= low <= high for UniformLatency")
        if per_byte < 0:
            raise ConfigurationError("per_byte cannot be negative")
        self.low = low
        self.high = high
        self.per_byte = per_byte

    def _base_delay(self, rng: DeterministicRNG, sender: str, recipient: str,
                    size_bytes: int) -> float:
        return rng.uniform(self.low, self.high) + self.per_byte * size_bytes


#: Approximate cluster-network bandwidth used by the profiles: 1 Gbit/s.
_GIGABIT_PER_BYTE = 8.0 / 1e9


def lan_profile(network_delay: float = 0.0) -> LatencyModel:
    """Latency profile matching the paper's single-cluster deployment.

    Sub-millisecond base latency plus 1 Gbit/s serialisation cost, plus the
    artificial ``network_delay`` (seconds).
    """
    return UniformLatency(low=0.0002, high=0.0008, per_byte=_GIGABIT_PER_BYTE,
                          extra_delay=network_delay)


def wan_profile(network_delay: float = 0.0) -> LatencyModel:
    """A wide-area profile (tens of milliseconds) for the geo-distribution discussion."""
    return UniformLatency(low=0.030, high=0.080, per_byte=_GIGABIT_PER_BYTE,
                          extra_delay=network_delay)
