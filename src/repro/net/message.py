"""Network message envelope."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """An addressed, typed message.

    Attributes
    ----------
    sender / recipient:
        Process identifiers (node names registered on the :class:`~repro.net.network.Network`).
    msg_type:
        Protocol-level discriminator, e.g. ``"proposal"``, ``"vote"``,
        ``"request_batch"``.  Nodes dispatch on this string.
    payload:
        Arbitrary message body.  The simulation passes Python objects by
        reference; size accounting uses :attr:`size_bytes` instead of
        serialisation.
    size_bytes:
        Modelled wire size, used for bandwidth accounting and block packing.
    msg_id:
        Unique id assigned at construction, useful for deduplication and logs.
    """

    sender: str
    recipient: str
    msg_type: str
    payload: Any
    size_bytes: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def reply(self, msg_type: str, payload: Any, size_bytes: int = 0) -> "Message":
        """Build a response message addressed back to the sender."""
        return Message(sender=self.recipient, recipient=self.sender,
                       msg_type=msg_type, payload=payload, size_bytes=size_bytes)
