"""The simulated network: reliable delivery with modelled latency."""

from __future__ import annotations

from typing import Callable

from ..errors import NetworkError
from ..sim.scheduler import Simulator
from .latency import ConstantLatency, LatencyModel
from .message import Message
from .node import NetworkNode

#: A fault-injection filter: returns True if the message should be dropped.
DropRule = Callable[[Message], bool]


class Network:
    """Connects :class:`NetworkNode` instances through the simulator.

    Delivery is reliable and exactly-once for correct processes (the system
    model's assumption).  Fault-injection hooks (:meth:`add_drop_rule`,
    :meth:`partition`) exist for tests that model faulty processes or explore
    behaviour outside the model's guarantees.
    """

    def __init__(self, sim: Simulator, latency: LatencyModel | None = None) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self._nodes: dict[str, NetworkNode] = {}
        self._drop_rules: list[DropRule] = []
        self._partitions: list[tuple[frozenset[str], frozenset[str]]] = []
        #: Sorted node names, rebuilt on registration (broadcast hot path).
        self._sorted_names: tuple[str, ...] = ()
        #: Totals for observability.
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0
        self._rng = sim.rng.derive("network")

    # -- membership -----------------------------------------------------------

    def register(self, node: NetworkNode) -> None:
        """Add a node; names must be unique."""
        if node.name in self._nodes:
            raise NetworkError(f"a node named {node.name!r} is already registered")
        self._nodes[node.name] = node
        self._sorted_names = tuple(sorted(self._nodes))
        node.attach(self)

    def node_names(self) -> list[str]:
        """Registered node names in sorted (deterministic) order."""
        return list(self._sorted_names)

    def node(self, name: str) -> NetworkNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- fault injection -------------------------------------------------------

    def add_drop_rule(self, rule: DropRule) -> None:
        """Drop every message for which ``rule(message)`` is true."""
        self._drop_rules.append(rule)

    def clear_drop_rules(self) -> None:
        self._drop_rules.clear()

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Silently drop all traffic between the two groups until :meth:`heal`."""
        self._partitions.append((frozenset(group_a), frozenset(group_b)))

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions.clear()

    def _crosses_partition(self, message: Message) -> bool:
        for group_a, group_b in self._partitions:
            if ((message.sender in group_a and message.recipient in group_b)
                    or (message.sender in group_b and message.recipient in group_a)):
                return True
        return False

    # -- transmission ----------------------------------------------------------

    def transmit(self, message: Message) -> None:
        """Schedule delivery of ``message`` after a modelled latency.

        Unknown recipients are an error (a correct process never addresses a
        process outside the deployment).
        """
        if message.recipient not in self._nodes:
            raise NetworkError(
                f"{message.sender!r} sent {message.msg_type!r} to unknown node "
                f"{message.recipient!r}"
            )
        if ((self._partitions and self._crosses_partition(message))
                or (self._drop_rules
                    and any(rule(message) for rule in self._drop_rules))):
            self.messages_dropped += 1
            return
        if message.sender == message.recipient:
            # Local self-delivery has no network latency but is still async so
            # handlers never re-enter each other.
            self.sim.call_soon(lambda: self._deliver(message))
            return
        delay = self.latency.delay(self._rng, message.sender, message.recipient,
                                   message.size_bytes)
        self.sim.call_in(delay, lambda: self._deliver(message))

    def multicast(self, sender: str, msg_type: str, payload: object,
                  size_bytes: int = 0,
                  recipients: list[str] | tuple[str, ...] | None = None) -> int:
        """Fan one payload out to many recipients (the broadcast fast path).

        Every per-recipient envelope shares the *same* payload object — the
        payload (and its modelled size) is computed once by the caller, never
        re-serialised per recipient — and the fault-injection checks are
        hoisted out of the loop when no partitions or drop rules are
        installed.  ``recipients`` defaults to every registered node except
        the sender, in sorted order; delivery semantics (latency draws,
        ordering, drop accounting) are identical to calling :meth:`transmit`
        once per recipient.  Returns the number of messages transmitted.
        """
        if recipients is None:
            recipients = [name for name in self._sorted_names if name != sender]
        filtered = bool(self._partitions or self._drop_rules)
        nodes = self._nodes
        sim = self.sim
        delay_of = self.latency.delay
        rng = self._rng
        for recipient in recipients:
            message = Message(sender=sender, recipient=recipient,
                              msg_type=msg_type, payload=payload,
                              size_bytes=size_bytes)
            if recipient not in nodes:
                raise NetworkError(
                    f"{sender!r} sent {msg_type!r} to unknown node {recipient!r}"
                )
            if filtered and (self._crosses_partition(message)
                             or any(rule(message) for rule in self._drop_rules)):
                self.messages_dropped += 1
                continue
            if recipient == sender:
                sim.call_soon(lambda m=message: self._deliver(m))
                continue
            delay = delay_of(rng, sender, recipient, size_bytes)
            sim.call_in(delay, lambda m=message: self._deliver(m))
        return len(recipients)

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.recipient)
        if node is None:  # node removed mid-flight; treat as dropped
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self.bytes_delivered += message.size_bytes
        node.deliver(message)
