"""The simulated network: reliable delivery with modelled latency."""

from __future__ import annotations

from typing import Callable

from ..errors import NetworkError
from ..sim.scheduler import Simulator
from .latency import ConstantLatency, LatencyModel
from .message import Message
from .node import NetworkNode

#: A fault-injection filter: returns True if the message should be dropped.
DropRule = Callable[[Message], bool]

#: A fault-injection filter: returns True if the message should be duplicated.
DuplicateRule = Callable[[Message], bool]

#: A fault-injection delay: extra seconds to add to the message's latency.
DelayRule = Callable[[Message], float]


class Network:
    """Connects :class:`NetworkNode` instances through the simulator.

    Delivery is reliable and exactly-once for correct processes (the system
    model's assumption).  Fault-injection hooks — :meth:`partition` /
    :meth:`heal`, drop, duplicate, and delay rules — model faulty processes
    and behaviour outside the model's guarantees; they are driven
    declaratively by :mod:`repro.faults` and remain usable directly in tests.
    """

    def __init__(self, sim: Simulator, latency: LatencyModel | None = None) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self._nodes: dict[str, NetworkNode] = {}
        self._drop_rules: list[DropRule] = []
        self._duplicate_rules: list[DuplicateRule] = []
        self._delay_rules: list[DelayRule] = []
        self._partitions: list[tuple[frozenset[str], frozenset[str]]] = []
        #: Normalised keys of installed partitions (idempotence + targeted heal).
        self._partition_keys: set[frozenset[frozenset[str]]] = set()
        #: True while any fault hook is installed; transmit/multicast branch to
        #: the shared slow path on this single flag so the fault-free hot path
        #: stays exactly as fast as before the fault subsystem existed.
        self._faulty = False
        #: Sorted node names, rebuilt on registration (broadcast hot path).
        self._sorted_names: tuple[str, ...] = ()
        #: Names of nodes that retired; sends to them drop instead of erroring.
        self._departed: set[str] = set()
        #: Totals for observability.
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.bytes_delivered = 0
        self._rng = sim.rng.derive("network")
        #: Storm grouping key for delivery events: all deliveries of this
        #: network share one handler (:meth:`_deliver_batch`), so same-instant
        #: deliveries — a multicast under constant latency — collapse into a
        #: single batched dispatch.  Delivery events are never cancelled,
        #: which the storm contract requires.
        self._storm_key = object()

    # -- membership -----------------------------------------------------------

    def register(self, node: NetworkNode) -> None:
        """Add a node; names must be unique."""
        if node.name in self._nodes:
            raise NetworkError(f"a node named {node.name!r} is already registered")
        self._nodes[node.name] = node
        self._sorted_names = tuple(sorted(self._nodes))
        node.attach(self)

    def unregister(self, name: str) -> None:
        """Remove a retired node; in-flight messages to it are dropped.

        Delivery already treats an unknown recipient as a drop (the node is
        gone), so messages still in transit when a node retires simply count
        toward ``messages_dropped``.
        """
        if name not in self._nodes:
            raise NetworkError(f"unknown node {name!r}")
        del self._nodes[name]
        self._departed.add(name)
        self._sorted_names = tuple(sorted(self._nodes))

    def node_names(self) -> list[str]:
        """Registered node names in sorted (deterministic) order."""
        return list(self._sorted_names)

    def node(self, name: str) -> NetworkNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- fault injection -------------------------------------------------------

    def _refresh_faulty(self) -> None:
        self._faulty = bool(self._partitions or self._drop_rules
                            or self._duplicate_rules or self._delay_rules)

    def add_drop_rule(self, rule: DropRule) -> None:
        """Drop every message for which ``rule(message)`` is true."""
        self._drop_rules.append(rule)
        self._refresh_faulty()

    def remove_drop_rule(self, rule: DropRule) -> None:
        """Uninstall a drop rule (no-op if it is not installed)."""
        if rule in self._drop_rules:
            self._drop_rules.remove(rule)
        self._refresh_faulty()

    def clear_drop_rules(self) -> None:
        self._drop_rules.clear()
        self._refresh_faulty()

    def add_duplicate_rule(self, rule: DuplicateRule) -> None:
        """Deliver a second copy of every message for which ``rule`` is true."""
        self._duplicate_rules.append(rule)
        self._refresh_faulty()

    def remove_duplicate_rule(self, rule: DuplicateRule) -> None:
        if rule in self._duplicate_rules:
            self._duplicate_rules.remove(rule)
        self._refresh_faulty()

    def add_delay_rule(self, rule: DelayRule) -> None:
        """Add ``rule(message)`` extra seconds to matching messages' latency."""
        self._delay_rules.append(rule)
        self._refresh_faulty()

    def remove_delay_rule(self, rule: DelayRule) -> None:
        if rule in self._delay_rules:
            self._delay_rules.remove(rule)
        self._refresh_faulty()

    @staticmethod
    def _partition_key(group_a: set[str] | frozenset[str],
                       group_b: set[str] | frozenset[str]) -> frozenset[frozenset[str]]:
        return frozenset((frozenset(group_a), frozenset(group_b)))

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Silently drop all traffic between the two groups until :meth:`heal`.

        Idempotent: installing the same cut twice (in either group order) is a
        no-op, so a duplicated ``partition()`` never needs two heals and never
        skews the drop accounting.
        """
        key = self._partition_key(group_a, group_b)
        if key in self._partition_keys:
            return
        self._partition_keys.add(key)
        self._partitions.append((frozenset(group_a), frozenset(group_b)))
        self._refresh_faulty()

    def heal(self, group_a: set[str] | None = None,
             group_b: set[str] | None = None) -> None:
        """Remove partitions: all of them, or exactly one cut.

        With no arguments every partition is removed (the historical
        behaviour).  With both groups, only the matching cut — in either group
        order — is removed, leaving other partitions installed; healing a cut
        that is not installed is a no-op.
        """
        if group_a is None and group_b is None:
            self._partitions.clear()
            self._partition_keys.clear()
        elif group_a is None or group_b is None:
            raise NetworkError("heal() takes both groups or neither")
        else:
            key = self._partition_key(group_a, group_b)
            if key in self._partition_keys:
                self._partition_keys.discard(key)
                self._partitions = [pair for pair in self._partitions
                                    if self._partition_key(*pair) != key]
        self._refresh_faulty()

    def _crosses_partition(self, message: Message) -> bool:
        for group_a, group_b in self._partitions:
            if ((message.sender in group_a and message.recipient in group_b)
                    or (message.sender in group_b and message.recipient in group_a)):
                return True
        return False

    # -- transmission ----------------------------------------------------------

    def transmit(self, message: Message) -> None:
        """Schedule delivery of ``message`` after a modelled latency.

        Unknown recipients are an error (a correct process never addresses a
        process outside the deployment) — except names that *used to be*
        members: a peer may still hold a retired node's address (e.g. a
        Request_batch retry rotating over historical signers), and those
        messages are simply lost, like mail to a decommissioned host.
        """
        if message.recipient not in self._nodes:
            if message.recipient in self._departed:
                self.messages_dropped += 1
                return
            raise NetworkError(
                f"{message.sender!r} sent {message.msg_type!r} to unknown node "
                f"{message.recipient!r}"
            )
        if self._faulty:
            self._transmit_faulty(message)
            return
        if message.sender == message.recipient:
            # Local self-delivery has no network latency but is still async so
            # handlers never re-enter each other.
            self.sim.call_soon_storm(self._deliver_batch, message, self._storm_key)
            return
        delay = self.latency.delay(self._rng, message.sender, message.recipient,
                                   message.size_bytes)
        self.sim.call_in_storm(delay, self._deliver_batch, message, self._storm_key)

    def _transmit_faulty(self, message: Message) -> None:
        """The single fault-aware scheduling path.

        Both :meth:`transmit` and :meth:`multicast` funnel through here
        whenever any fault hook (partition, drop, duplicate, or delay rule)
        is installed, so the two paths produce identical drop/duplicate/byte
        accounting and identical RNG draw order by construction.
        """
        if ((self._partitions and self._crosses_partition(message))
                or (self._drop_rules
                    and any(rule(message) for rule in self._drop_rules))):
            self.messages_dropped += 1
            return
        extra = 0.0
        for delay_rule in self._delay_rules:
            extra += delay_rule(message)
        local = message.sender == message.recipient
        if local and extra <= 0.0:
            self.sim.call_soon_storm(self._deliver_batch, message, self._storm_key)
        else:
            base = 0.0 if local else self.latency.delay(
                self._rng, message.sender, message.recipient, message.size_bytes)
            self.sim.call_in_storm(base + extra, self._deliver_batch, message,
                                   self._storm_key)
        for duplicate_rule in self._duplicate_rules:
            if duplicate_rule(message):
                # The duplicate copy draws its own latency (and delay-rule
                # extras), modelling an independent second network path.
                self.messages_duplicated += 1
                dup_base = 0.0 if local else self.latency.delay(
                    self._rng, message.sender, message.recipient,
                    message.size_bytes)
                dup_extra = 0.0
                for delay_rule in self._delay_rules:
                    dup_extra += delay_rule(message)
                self.sim.call_in_storm(dup_base + dup_extra, self._deliver_batch,
                                       message, self._storm_key)

    def multicast(self, sender: str, msg_type: str, payload: object,
                  size_bytes: int = 0,
                  recipients: list[str] | tuple[str, ...] | None = None) -> int:
        """Fan one payload out to many recipients (the broadcast fast path).

        Every per-recipient envelope shares the *same* payload object — the
        payload (and its modelled size) is computed once by the caller, never
        re-serialised per recipient — and the fault-injection checks are
        hoisted out of the loop when no fault hooks are installed.  With
        faults installed every envelope goes through the same
        :meth:`_transmit_faulty` path as :meth:`transmit`, so the two paths
        can never diverge in drop/duplicate/byte accounting.  ``recipients``
        defaults to every registered node except the sender, in sorted order;
        delivery semantics (latency draws, ordering, drop accounting) are
        identical to calling :meth:`transmit` once per recipient.  Returns
        the number of messages transmitted.
        """
        if recipients is None:
            recipients = [name for name in self._sorted_names if name != sender]
        filtered = self._faulty
        nodes = self._nodes
        sim = self.sim
        delay_of = self.latency.delay
        rng = self._rng
        for recipient in recipients:
            message = Message(sender=sender, recipient=recipient,
                              msg_type=msg_type, payload=payload,
                              size_bytes=size_bytes)
            if recipient not in nodes:
                if recipient in self._departed:
                    self.messages_dropped += 1
                    continue
                raise NetworkError(
                    f"{sender!r} sent {msg_type!r} to unknown node {recipient!r}"
                )
            if filtered:
                self._transmit_faulty(message)
                continue
            if recipient == sender:
                sim.call_soon_storm(self._deliver_batch, message, self._storm_key)
                continue
            delay = delay_of(rng, sender, recipient, size_bytes)
            sim.call_in_storm(delay, self._deliver_batch, message, self._storm_key)
        return len(recipients)

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.recipient)
        if node is None or node.crashed:
            # Node removed mid-flight or crash-faulted: the message is lost.
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self.bytes_delivered += message.size_bytes
        node.deliver(message)

    def _deliver_batch(self, messages: list[Message]) -> None:
        """Deliver a storm run of same-instant messages, strictly in order.

        Per-message behaviour — crash checks, drop accounting, handler
        invocation — is exactly that of :meth:`_deliver` once per message;
        only the event-loop dispatch is shared.  Recipient state is re-read
        for every message, so a handler early in the run crashing (or
        retiring) a node affects later deliveries just as it would have
        under scalar dispatch.
        """
        nodes = self._nodes
        for message in messages:
            node = nodes.get(message.recipient)
            if node is None or node.crashed:
                self.messages_dropped += 1
                continue
            self.messages_delivered += 1
            self.bytes_delivered += message.size_bytes
            node.deliver(message)
