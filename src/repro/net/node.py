"""Base class for processes attached to the simulated network."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..errors import NetworkError
from ..sim.scheduler import Simulator
from .message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Network

Handler = Callable[[Message], None]


class NetworkNode:
    """A named process that can send and receive :class:`Message` objects.

    Subclasses register per-``msg_type`` handlers with :meth:`on`; unknown
    message types raise, so protocol typos fail loudly in tests.
    """

    def __init__(self, name: str, sim: Simulator) -> None:
        if not name:
            raise NetworkError("node name must be non-empty")
        self.name = name
        self.sim = sim
        self._network: "Network | None" = None
        self._handlers: dict[str, Handler] = {}
        #: Crash-fault state: a crashed node neither sends nor receives (the
        #: network counts traffic to it as dropped).  Plain attribute, not a
        #: property — it is read on the per-message delivery hot path.
        self.crashed = False
        #: Counters for observability / tests.
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Called by :meth:`Network.register`; binds the node to its network."""
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise NetworkError(f"node {self.name!r} is not attached to a network")
        return self._network

    def on(self, msg_type: str, handler: Handler) -> None:
        """Register the handler invoked for messages of ``msg_type``."""
        self._handlers[msg_type] = handler

    # -- crash faults ----------------------------------------------------------

    def crash(self) -> None:
        """Crash-fault the node: it stops sending and receiving entirely.

        Subclasses release volatile state in :meth:`_on_crash` (cancel timers,
        drop in-memory buffers); durable state — anything a real process keeps
        on disk — survives for :meth:`recover`.  Idempotent.
        """
        if self.crashed:
            return
        self.crashed = True
        self._on_crash()

    def recover(self) -> None:
        """Bring a crashed node back; :meth:`_on_recover` re-synchronises state.

        Idempotent; a no-op on a node that is up.
        """
        if not self.crashed:
            return
        self.crashed = False
        self._on_recover()

    def _on_crash(self) -> None:
        """Hook: release volatile state when the node crashes (default: none)."""

    def _on_recover(self) -> None:
        """Hook: replay/re-synchronise state on recovery (default: none)."""

    # -- sending --------------------------------------------------------------

    def send(self, recipient: str, msg_type: str, payload: Any,
             size_bytes: int = 0) -> None:
        """Send a point-to-point message (silently dropped while crashed)."""
        if self.crashed:
            return
        message = Message(sender=self.name, recipient=recipient,
                          msg_type=msg_type, payload=payload, size_bytes=size_bytes)
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.network.transmit(message)

    def broadcast(self, msg_type: str, payload: Any, size_bytes: int = 0,
                  include_self: bool = False) -> None:
        """Send the same message to every registered node (optionally including self).

        Routed through :meth:`~repro.net.network.Network.multicast`, so the
        payload object and size accounting are shared across recipients.
        Silently dropped while crashed.
        """
        if self.crashed:
            return
        network = self.network
        recipients = network.node_names() if include_self else None
        sent = network.multicast(self.name, msg_type, payload, size_bytes,
                                 recipients=recipients)
        self.messages_sent += sent
        self.bytes_sent += size_bytes * sent

    # -- receiving ------------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Entry point used by the network when a message arrives."""
        if self.crashed:  # defence in depth; the network already drops these
            return
        self.messages_received += 1
        self.bytes_received += message.size_bytes
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            raise NetworkError(
                f"node {self.name!r} has no handler for message type {message.msg_type!r}"
            )
        handler(message)
