"""The service runtime: streamed ingest over a long-running deployment.

:class:`ServiceRuntime` turns a batch :class:`~repro.api.session.Session`
into a long-lived service: external producers submit elements into a bounded
ingress queue at any time (with explicit accept/defer/reject backpressure),
and the simulation advances in fixed ticks that drain the queue into the
live servers.  With a database bound (``db=...``), the deployment runs on the
durable ``sqlite`` ledger backend, periodically checkpoints hashchain batch
contents, and — when re-opened on an existing database — restores every
server from the persisted chain before accepting new traffic.

Threading model: the simulator itself is single-threaded; the runtime guards
every entry point (submit / tick / snapshot / stop) with one lock so the
:mod:`repro.service.http` endpoint can serve scrapes from its own thread
while the driving loop ticks.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import nullcontext
from pathlib import Path
from typing import Any

from ..analysis.throughput import PAPER_ROLLING_WINDOW, recent_throughput
from ..api.results import RunResult
from ..api.session import Session
from ..config import ExperimentConfig
from ..core.types import HashBatch
from ..errors import ConfigurationError, SimulationError
from ..workload.elements import make_element
from ..workload.traces import WorkloadTrace
from .persistence import SqliteLedger, ledger_db

#: Queue-depth fraction above which accepted submissions are flagged deferred.
DEFER_WATERMARK = 0.5


class ServiceRuntime:
    """A Setchain deployment driven as a service: stream in, tick, observe."""

    def __init__(self, scenario: Any = "service/default", *, db: str | Path | None = None,
                 seed: int | None = None, scale: float = 1.0, tick: float = 0.1,
                 queue_limit: int = 10_000, drain_per_tick: int | None = None,
                 checkpoint_every: int = 10) -> None:
        if tick <= 0:
            raise ConfigurationError("tick must be positive")
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be at least 1")
        if drain_per_tick is not None and drain_per_tick < 1:
            raise ConfigurationError("drain_per_tick must be at least 1")
        self.tick_duration = tick
        self.queue_limit = queue_limit
        self.drain_per_tick = drain_per_tick
        self.checkpoint_every = checkpoint_every
        self.db_path = str(db) if db is not None else None

        config = self._resolve(scenario)
        if self.db_path is not None:
            config = config.with_overrides(ledger_backend="sqlite")
        binding = ledger_db(self.db_path) if self.db_path is not None else nullcontext()
        with binding:
            self.session = Session(config, scale=scale, seed=seed, inject=False)
        self.deployment = self.session.deployment
        self.config = self.session.config

        #: Blocks replayed from a persisted ledger at startup (0 for fresh runs).
        self.recovered_blocks = self._restore()
        self.session.start()

        self._lock = threading.RLock()
        self._queue: deque[tuple[str, int]] = deque()
        self._rr = 0  # round-robin cursor over servers
        self.ticks = 0
        self.restarts = 0
        self._stopped = False
        #: Ingress accounting: every submit() lands in exactly one bucket.
        self.accepted = 0
        self.deferred = 0
        self.rejected = 0
        #: Elements handed to a server / refused by one (duplicate, invalid,
        #: or crashed) after leaving the queue.
        self.drained = 0
        self.server_rejected = 0
        self._trace: WorkloadTrace | None = None
        self._trace_pos = 0
        self._trace_offset = 0.0

    @staticmethod
    def _resolve(scenario: Any) -> ExperimentConfig:
        from ..api.session import _resolve_config
        return _resolve_config(scenario)

    # -- restart restoration ------------------------------------------------------

    def _restore(self) -> int:
        """Rebuild server state from a previously persisted ledger.

        Three steps, ordered before the first simulator advance: preload
        every server's batch store from the journal (hashchain keeps batch
        contents out-of-band), mark each server's own persisted hash-batches
        as already signed (so replay does not re-append them), then replay
        the chain into the freshly subscribed servers.
        """
        backend = self.deployment.ledger_backend
        if not isinstance(backend, SqliteLedger) or backend.resumed_from == 0:
            return 0
        self.restarts = 1
        batches = backend.journaled_batches()
        for server in self.deployment.servers:
            store = getattr(server, "store", None)
            if store is not None:
                for batch_hash, items in batches.items():
                    store.register_remote(batch_hash, items)
            shared = getattr(server, "shared_store", None)
            if shared is not None:
                for batch_hash, items in batches.items():
                    shared.register_remote(batch_hash, items)
        blocks = backend.persisted_blocks()
        by_name = {server.name: server for server in self.deployment.servers}
        for block in blocks:
            for tx in block.transactions:
                if isinstance(tx.payload, HashBatch):
                    signer = by_name.get(tx.payload.signer)
                    signed = getattr(signer, "_signed_hashes", None)
                    if signed is not None:
                        signed.add(tx.payload.batch_hash)
        return backend.replay_persisted(blocks)

    # -- ingest -------------------------------------------------------------------

    def submit(self, client: str = "service", size_bytes: int | None = None) -> str:
        """Offer one element for ingestion; returns the backpressure verdict.

        ``"accepted"`` — enqueued with headroom; ``"deferred"`` — enqueued but
        the queue is past its watermark (producers should slow down);
        ``"rejected"`` — the queue is full (or the service is stopped) and the
        submission was dropped.  Element ids are assigned at drain time, so a
        rejected submission costs nothing.
        """
        size = size_bytes if size_bytes is not None else int(
            self.config.workload.element_size_mean)
        if size <= 0:
            raise ConfigurationError("element size must be positive")
        with self._lock:
            if self._stopped or len(self._queue) >= self.queue_limit:
                self.rejected += 1
                return "rejected"
            self._queue.append((client, size))
            if len(self._queue) > self.queue_limit * DEFER_WATERMARK:
                self.deferred += 1
                return "deferred"
            self.accepted += 1
            return "accepted"

    def submit_many(self, count: int, client: str = "service",
                    size_bytes: int | None = None) -> dict[str, int]:
        """Submit ``count`` elements; returns verdict counts for the batch."""
        verdicts = {"accepted": 0, "deferred": 0, "rejected": 0}
        for _ in range(count):
            verdicts[self.submit(client=client, size_bytes=size_bytes)] += 1
        return verdicts

    def load_trace(self, trace: WorkloadTrace | str | Path) -> int:
        """Arm a recorded workload trace to drive ingest through ticks.

        Entry times are interpreted relative to the moment the trace is
        loaded; each tick submits the entries that fall due during it, so
        replayed streams flow through the same backpressure accounting as
        live producers.
        """
        if not isinstance(trace, WorkloadTrace):
            trace = WorkloadTrace.from_json(trace)
        with self._lock:
            self._trace = trace
            self._trace_pos = 0
            self._trace_offset = self.session.now
        return len(trace)

    @property
    def trace_done(self) -> bool:
        """True when no trace is armed or every entry has been submitted."""
        with self._lock:
            return self._trace is None or self._trace_pos >= len(self._trace)

    def _feed_trace(self) -> None:
        if self._trace is None:
            return
        horizon = self.session.now - self._trace_offset + self.tick_duration
        entries = self._trace.entries
        while self._trace_pos < len(entries) and entries[self._trace_pos].time <= horizon + 1e-9:
            entry = entries[self._trace_pos]
            self._trace_pos += 1
            self.submit(client=entry.client, size_bytes=entry.size_bytes)

    # -- advancing ----------------------------------------------------------------

    def tick(self) -> None:
        """One service tick: feed the trace, drain the queue, advance the sim."""
        with self._lock:
            if self._stopped:
                raise SimulationError("service runtime is stopped")
            self._feed_trace()
            self._drain()
            self.session.run_for(self.tick_duration)
            self.ticks += 1
            if (self.db_path is not None
                    and self.ticks % self.checkpoint_every == 0):
                self.checkpoint()

    def run_for(self, duration: float) -> None:
        """Advance the service by ``duration`` simulated seconds of ticks."""
        if duration < 0:
            raise ConfigurationError("duration cannot be negative")
        deadline = self.session.now + duration - 1e-9
        while self.session.now < deadline:
            self.tick()

    def _drain(self) -> None:
        deployment = self.deployment
        budget = self.drain_per_tick if self.drain_per_tick is not None else len(self._queue)
        servers = deployment.servers
        router = deployment.shard_router
        while self._queue and budget > 0:
            if router is not None:
                # Sharded ingress: the element's id fixes its shard, the
                # router round-robins within it.  No active shard (none with
                # a routable quorum) keeps the queue for later, like the
                # all-servers-down case below.
                if not router.active_shards():
                    return
                client, size = self._queue.popleft()
                budget -= 1
                element = make_element(client=client, size_bytes=size,
                                       created_at=deployment.sim.now)
                routed = router.route_round_robin(element.element_id)
                target = routed[0] if routed is not None else None
                if target is not None and target.add(element):
                    deployment.injected_elements.append(element)
                    deployment.metrics.record_injected(element, deployment.sim.now)
                    self.drained += 1
                else:
                    self.server_rejected += 1
                continue
            target = None
            for _ in range(len(servers)):
                candidate = servers[self._rr % len(servers)]
                self._rr += 1
                # Draining servers refuse new adds and bootstrapping joiners
                # are not yet members; route around both, like crashes.
                if (not candidate.crashed and not candidate.draining
                        and not candidate.bootstrapping):
                    target = candidate
                    break
            if target is None:
                return  # every server is down; keep the queue for later
            client, size = self._queue.popleft()
            budget -= 1
            element = make_element(client=client, size_bytes=size,
                                   created_at=deployment.sim.now)
            if target.add(element):
                deployment.injected_elements.append(element)
                deployment.metrics.record_injected(element, deployment.sim.now)
                self.drained += 1
            else:
                self.server_rejected += 1

    # -- operations ---------------------------------------------------------------

    def rolling_restart(self, names: list[str] | None = None,
                        down_for: float = 1.0, between: float = 1.0) -> None:
        """Crash and recover each named server in sequence, ticking throughout."""
        for name in names if names is not None else [s.name for s in self.deployment.servers]:
            self.session.crash(name)
            self.run_for(down_for)
            self.session.recover(name)
            self.run_for(between)

    def add_server(self, name: str | None = None, *,
                   algorithm: str | None = None,
                   region: str | None = None) -> str:
        """Scale out: join a server mid-service; returns its name.

        The joiner bootstraps via state transfer and receives ingress
        traffic (the drain round-robin includes it) once caught up.
        """
        with self._lock:
            if self._stopped:
                raise SimulationError("service runtime is stopped")
            server = self.deployment.add_server(name=name, algorithm=algorithm,
                                                region=region)
            return server.name

    def remove_server(self, name: str, *, drain: bool = True) -> None:
        """Scale in: drain and retire a server mid-service.

        Ingress routes around it immediately; the retirement completes once
        its obligations are handed off (advance ticks to let it finish).
        """
        with self._lock:
            if self._stopped:
                raise SimulationError("service runtime is stopped")
            self.deployment.remove_server(name, drain=drain)

    def checkpoint(self) -> int:
        """Journal every server's batch-store contents to the database.

        Returns the number of batches journaled (0 without a database).
        The chain itself needs no checkpointing — blocks are durable the
        moment they are cut.  Runs whose membership changed journal their
        epoch timeline alongside, so offline audits can verify it.
        """
        backend = self.deployment.ledger_backend
        if not isinstance(backend, SqliteLedger):
            return 0
        membership = self.deployment.membership
        if membership is not None and membership.changed:
            backend.journal_membership(
                [epoch.to_dict() for epoch in membership.epochs])
        batches: dict[str, tuple[object, ...]] = {}
        for server in self.deployment.servers:
            for attr in ("store", "shared_store"):
                store = getattr(server, attr, None)
                if store is not None and hasattr(store, "items"):
                    batches.update(store.items())
        if not batches:
            return 0
        return backend.journal_batches(batches)

    # -- observation --------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def ingress_counters(self) -> dict[str, int]:
        with self._lock:
            return {"accepted": self.accepted, "deferred": self.deferred,
                    "rejected": self.rejected, "drained": self.drained,
                    "server_rejected": self.server_rejected,
                    "queue_depth": len(self._queue),
                    "queue_limit": self.queue_limit}

    def healthz(self) -> dict[str, Any]:
        """Liveness summary: ``ok`` while a commit quorum of servers is up.

        With dynamic membership both sides of the comparison follow the
        *current* epoch: only live current-epoch members count (a
        bootstrapping joiner or a draining leaver is not one), against that
        epoch's quorum — not the build-time f+1.  The payload always carries
        the epoch number (1 until the first membership change).

        A server counts as live only while it can still serve commits: a
        draining leaver refuses new adds, a departed-but-not-yet-retired
        server is already out of the write path, and a bootstrapping joiner
        has no state yet — none of them contribute to the quorum this probe
        answers for.  Sharded deployments additionally report per-shard
        liveness and degrade when *any* shard falls below its quorum.
        """
        with self._lock:
            deployment = self.deployment
            membership = deployment.membership

            def serving(server: Any) -> bool:
                return not (server.crashed or server.draining
                            or server.departed or server.bootstrapping)

            if membership is not None and membership.changed:
                current = membership.current
                members = set(current.members)
                live = sum(1 for s in deployment.servers
                           if s.name in members and serving(s))
                quorum = current.quorum
                epoch = current.index
            else:
                live = sum(1 for s in deployment.servers if serving(s))
                quorum = self.config.setchain.quorum
                epoch = 1
            healthy = live >= quorum
            payload: dict[str, Any] = {
                "live_servers": live, "quorum": quorum,
                "epoch": epoch,
                "stopped": self._stopped,
                "uptime_s": self.session.now}
            router = deployment.shard_router
            if router is not None:
                shards: dict[str, Any] = {}
                for index, servers in enumerate(router.shard_servers):
                    shard_live = sum(1 for s in servers if serving(s))
                    shards[str(index)] = {"live": shard_live,
                                          "quorum": router.quorum}
                    if shard_live < router.quorum:
                        healthy = False
                payload["shards"] = shards
            payload["status"] = ("ok" if healthy and not self._stopped
                                 else "degraded")
            return payload

    def metrics_snapshot(self) -> dict[str, Any]:
        """One JSON-safe scrape of the running deployment.

        Field names follow the :class:`~repro.api.results.RunResult`
        vocabulary (injected / committed / committed_fraction / first_commit
        / label / algorithm) so dashboards built against batch artifacts read
        service scrapes unchanged, plus live-only gauges (queue, backpressure,
        per-server state, ledger height).
        """
        with self._lock:
            deployment = self.deployment
            metrics = deployment.metrics
            now = deployment.sim.now
            commit_times = metrics.commit_times()
            injected_ids = {e.element_id for e in deployment.injected_elements}
            committed_total = metrics.committed_count
            committed_this_run = sum(
                1 for record in metrics.elements.values()
                if record.committed_at is not None
                and record.element_id in injected_ids)
            injected = len(deployment.injected_elements)
            servers = {
                server.name: {"crashed": server.crashed,
                              "byzantine": server.is_byzantine,
                              "backlog": server.backlog,
                              "epoch": server.get().epoch}
                for server in deployment.servers}
            backend = deployment.ledger_backend
            ledger: dict[str, Any] = {}
            height = getattr(backend, "height", None)
            if height is not None:
                ledger["height"] = height
            pending = getattr(backend, "pending_count", None)
            if callable(pending):
                ledger["pending"] = pending()
            if isinstance(backend, SqliteLedger):
                ledger["durable"] = True
                ledger["db"] = backend.path
                ledger["resumed_from"] = backend.resumed_from
            snapshot: dict[str, Any] = {
                "label": self.config.label,
                "algorithm": self.config.algorithm,
                "now": now,
                "ticks": self.ticks,
                "injected": injected,
                "committed": committed_total,
                "committed_this_run": committed_this_run,
                "recovered_commits": committed_total - committed_this_run,
                "committed_fraction": (committed_this_run / injected
                                       if injected else 0.0),
                "first_commit": commit_times[0] if commit_times else None,
                "rolling_throughput": recent_throughput(commit_times, now),
                "rolling_window_s": PAPER_ROLLING_WINDOW,
                "ingress": {"accepted": self.accepted, "deferred": self.deferred,
                            "rejected": self.rejected, "drained": self.drained,
                            "server_rejected": self.server_rejected,
                            "queue_depth": len(self._queue),
                            "queue_limit": self.queue_limit},
                "servers": servers,
                "ledger": ledger,
                "recovered_blocks": self.recovered_blocks,
            }
            membership = deployment.membership
            if membership is not None and membership.changed:
                # Scrapes of static services keep the earlier shape; elastic
                # ones expose the current epoch's set and quorum.
                current = membership.current
                snapshot["membership"] = {
                    "epoch": current.index,
                    "members": list(current.members),
                    "size": len(current.members),
                    "quorum": current.quorum,
                }
            return snapshot

    def observability_snapshot(self) -> tuple[dict[str, Any], dict[str, Any]]:
        """Metrics snapshot plus health summary under ONE lock acquisition.

        The Prometheus handler renders its text from the returned dicts
        outside the lock, so a scrape costs one bounded critical section no
        matter how slow the scraper's socket is (the lock is re-entrant, so
        the two nested snapshot calls do not re-acquire).
        """
        with self._lock:
            return self.metrics_snapshot(), self.healthz()

    def result(self) -> RunResult:
        """Package the standard batch analyses for the run so far."""
        return self.session.result()

    # -- lifecycle ----------------------------------------------------------------

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Graceful shutdown (idempotent): checkpoint, stop, close the db."""
        with self._lock:
            if self._stopped:
                return
            self.checkpoint()
            self._stopped = True
            self.deployment.stop()
            backend = self.deployment.ledger_backend
            if isinstance(backend, SqliteLedger):
                backend.close()

    def kill(self) -> None:
        """Abrupt termination, as if the process died: no checkpoint, no
        graceful stop, uncommitted writes rolled back — the database keeps
        exactly the blocks already cut."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            backend = self.deployment.ledger_backend
            if isinstance(backend, SqliteLedger):
                backend.abort()

    def __enter__(self) -> "ServiceRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
