"""Live metrics over HTTP: ``GET /metrics`` and ``GET /healthz``.

A tiny stdlib ``http.server`` endpoint serving scrapes of a running
:class:`~repro.service.runtime.ServiceRuntime`.  The server runs in a daemon
thread; every scrape snapshots the runtime state under a *single* lock
acquisition and renders the reply outside it, so readings are consistent with
the tick loop without ever blocking it for long.

``/metrics`` serves the JSON snapshot by default and the Prometheus text
exposition with ``?format=prometheus`` (for a scraper's ``scrape_configs``).
``/healthz`` replies ``200`` while a commit quorum of servers is live and
``503`` (with ``Retry-After``) otherwise; health responses are marked
``Cache-Control: no-store`` so no intermediary ever serves a stale verdict.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from ..obs.prom import render_snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import ServiceRuntime


class MetricsEndpoint:
    """Serve ``/metrics`` and ``/healthz`` for one runtime (daemon thread)."""

    def __init__(self, runtime: "ServiceRuntime", host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.runtime = runtime
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                endpoint._handle(self)

            def log_message(self, *args: object) -> None:
                """Silence per-request stderr logging."""

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics", daemon=True)
        self._stopped = False
        self._thread.start()

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urllib.parse.urlsplit(request.path)
        path = parsed.path
        query = urllib.parse.parse_qs(parsed.query)
        if path == "/metrics":
            if query.get("format", ["json"])[-1] == "prometheus":
                # One lock acquisition buys both dicts; the (allocation-heavy)
                # text rendering then runs without holding the runtime lock.
                snapshot, healthz = self.runtime.observability_snapshot()
                tracer = self.runtime.deployment.tracer
                text = render_snapshot(snapshot, healthz=healthz,
                                       tracer=tracer)
                self._reply_text(request, 200, text, PROM_CONTENT_TYPE)
            else:
                self._reply(request, 200, self.runtime.metrics_snapshot())
        elif path == "/healthz":
            body = self.runtime.healthz()
            healthy = body["status"] == "ok"
            headers = {"Cache-Control": "no-store"}
            if not healthy:
                headers["Retry-After"] = "1"
            self._reply(request, 200 if healthy else 503, body,
                        extra_headers=headers)
        else:
            self._reply(request, 404, {"error": f"no route {path!r}",
                                       "routes": ["/metrics", "/healthz"]})

    @staticmethod
    def _reply(request: BaseHTTPRequestHandler, status: int, body: dict,
               extra_headers: dict[str, str] | None = None) -> None:
        payload = json.dumps(body).encode()
        request.send_response(status)
        request.send_header("Content-Type", "application/json")
        request.send_header("Content-Length", str(len(payload)))
        if extra_headers:
            for name, value in extra_headers.items():
                request.send_header(name, value)
        request.end_headers()
        request.wfile.write(payload)

    @staticmethod
    def _reply_text(request: BaseHTTPRequestHandler, status: int, text: str,
                    content_type: str) -> None:
        payload = text.encode()
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral port)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the endpoint down (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsEndpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
