"""Live metrics over HTTP: ``GET /metrics`` and ``GET /healthz``.

A tiny stdlib ``http.server`` endpoint serving JSON scrapes of a running
:class:`~repro.service.runtime.ServiceRuntime`.  The server runs in a daemon
thread; every scrape takes the runtime lock, so readings are consistent with
the tick loop without ever blocking it for long.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import ServiceRuntime


class MetricsEndpoint:
    """Serve ``/metrics`` and ``/healthz`` for one runtime (daemon thread)."""

    def __init__(self, runtime: "ServiceRuntime", host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.runtime = runtime
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                endpoint._handle(self)

            def log_message(self, *args: object) -> None:
                """Silence per-request stderr logging."""

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics", daemon=True)
        self._stopped = False
        self._thread.start()

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            self._reply(request, 200, self.runtime.metrics_snapshot())
        elif path == "/healthz":
            body = self.runtime.healthz()
            self._reply(request, 200 if body["status"] == "ok" else 503, body)
        else:
            self._reply(request, 404, {"error": f"no route {path!r}",
                                       "routes": ["/metrics", "/healthz"]})

    @staticmethod
    def _reply(request: BaseHTTPRequestHandler, status: int, body: dict) -> None:
        payload = json.dumps(body).encode()
        request.send_response(status)
        request.send_header("Content-Type", "application/json")
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral port)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the endpoint down (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsEndpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
