"""The ``service/`` scenario family: shapes batch experiments cannot express.

Registered into the shared scenario registry by the catalog (so
``python -m repro list-scenarios --family service`` and ``repro serve
<name>`` both see them).  These configs describe the *deployment* a service
runs on — cluster size, algorithm, ledger cadence, and any scheduled faults;
the injection window only matters when a scenario is run as a batch
experiment, since service mode streams its own ingest and ``repro serve``
controls wall-clock duration directly.
"""

from __future__ import annotations

from ..api.builder import Scenario
from ..api.registry import register_scenario


def register_service_family() -> None:
    """Register every ``service/...`` scenario (called once by the catalog)."""
    register_scenario(
        "service/default", tags=("service",),
        description="service-mode default: 4-server hashchain on the ideal "
                    "sequencer, sized for interactive ticking",
    )(lambda: Scenario.hashchain().servers(4).rate(200).collector(25)
      .inject_for(10).drain(60).backend("ideal"))

    register_scenario(
        "service/smoke", tags=("service", "ci"),
        description="tiny service deployment for CI smoke runs "
                    "(4-server hashchain, finishes in seconds)",
    )(lambda: Scenario.hashchain().servers(4).rate(100).collector(10)
      .inject_for(5).drain(30).backend("ideal"))

    # Rolling restarts: each server is crash-faulted and recovered in turn
    # while traffic keeps flowing — the upgrade drill a long-running service
    # must survive (recovered servers replay the blocks they missed).
    for algorithm in ("vanilla", "hashchain"):
        register_scenario(
            f"service/rolling-restart/{algorithm}",
            tags=("service", "faults", algorithm),
            description=f"{algorithm}: servers 0-2 restarted one at a time "
                        "(down 5 s each) under steady 1k el/s traffic",
        )(lambda a=algorithm: Scenario(a).servers(4).rate(1_000).collector(25)
          .inject_for(40).drain(80).backend("ideal")
          .crash(10.0, "server-0", until=15.0)
          .crash(20.0, "server-1", until=25.0)
          .crash(30.0, "server-2", until=35.0))

    # Sustained overload: offered load far above the algorithm's analytical
    # ceiling, held for the whole window.  Run under `repro serve` the
    # ingress queue saturates and the accept/defer/reject counters show
    # backpressure doing its job.
    for algorithm in ("hashchain", "compresschain"):
        register_scenario(
            f"service/overload/{algorithm}",
            tags=("service", "stress", algorithm),
            description=f"{algorithm}: 30k el/s sustained — far past the "
                        "ceiling, exercising backpressure and backlog",
        )(lambda a=algorithm: Scenario(a).servers(4).rate(30_000)
          .collector(100).inject_for(20).drain(120).backend("ideal"))

    # Long horizon: an order of magnitude past the paper's 50 s window, at a
    # rate the cluster can sustain indefinitely — drift (unbounded backlogs,
    # leaking queues) shows up here, not in short batch runs.
    register_scenario(
        "service/long-horizon/hashchain",
        tags=("service", "soak", "hashchain"),
        description="hashchain soak: 500 el/s held for 500 s of simulated "
                    "time (10x the paper's measurement window)",
    )(lambda: Scenario.hashchain().servers(4).rate(500).collector(25)
      .inject_for(500).drain(100).backend("ideal"))
