"""CLI entry points for service mode: ``repro serve`` and ``repro service``.

``serve`` drives a :class:`~repro.service.runtime.ServiceRuntime` from the
command line: it streams elements (at a fixed rate or from a recorded trace)
through the ingress queue, ticks the simulation, serves live metrics over
HTTP, and shuts down cleanly on SIGINT/SIGTERM.  ``service inspect`` re-opens
a persisted sqlite ledger offline and audits the chain.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import urllib.error
import urllib.request

from ..analysis.report import render_table
from ..errors import ReproError
from .http import MetricsEndpoint
from .persistence import audit_chain
from .runtime import ServiceRuntime


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scenario", nargs="?", default="service/default",
                        help="registered scenario describing the deployment "
                             "(default: service/default)")
    parser.add_argument("--db", metavar="PATH",
                        help="persist the ledger to this sqlite database; "
                             "re-opening an existing database resumes it")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="simulated seconds to stream elements for "
                             "(default 10)")
    parser.add_argument("--settle", type=float, default=5.0,
                        help="extra simulated seconds to run after streaming "
                             "ends, letting in-flight elements commit "
                             "(default 5)")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="submissions per simulated second (default 200)")
    parser.add_argument("--trace", metavar="PATH",
                        help="replay a recorded workload trace instead of "
                             "submitting at --rate")
    parser.add_argument("--tick", type=float, default=0.1,
                        help="simulated seconds per service tick (default 0.1)")
    parser.add_argument("--queue-limit", type=int, default=10_000,
                        help="ingress queue bound before submissions are "
                             "rejected (default 10000)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="metrics endpoint bind address")
    parser.add_argument("--port", type=int, default=0,
                        help="metrics endpoint port (default 0 = ephemeral)")
    parser.add_argument("--no-http", action="store_true",
                        help="run without the metrics endpoint")
    parser.add_argument("--min-availability", type=float, default=None,
                        metavar="FRACTION",
                        help="probe /metrics every tick and exit non-zero if "
                             "fewer than this fraction of probes succeed")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the simulator/workload seed")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="down-scale factor for the deployment config")
    parser.add_argument("--json", metavar="PATH",
                        help="write the final RunResult JSON artifact here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the end-of-run summary")


def add_service_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="service_command", required=True)
    inspect_p = sub.add_parser("inspect",
                               help="audit a persisted sqlite ledger")
    inspect_p.add_argument("db", help="sqlite database written by repro serve")
    inspect_p.add_argument("--json", action="store_true",
                           help="emit the audit as one JSON object")


def _probe(url: str) -> bool:
    try:
        with urllib.request.urlopen(url + "/metrics", timeout=2.0) as response:
            return response.status == 200
    except (urllib.error.URLError, OSError):
        return False


def cmd_serve(args: argparse.Namespace) -> int:
    stop_requested = False

    def request_stop(signum: int, frame: object) -> None:
        nonlocal stop_requested
        stop_requested = True

    installed: list[int] = []
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, request_stop)
            installed.append(signum)
    except ValueError:
        pass  # not the main thread (e.g. under a test runner worker)

    runtime = ServiceRuntime(args.scenario, db=args.db, seed=args.seed,
                             scale=args.scale, tick=args.tick,
                             queue_limit=args.queue_limit)
    endpoint = None if args.no_http else MetricsEndpoint(
        runtime, host=args.host, port=args.port)
    probing = args.min_availability is not None and endpoint is not None
    probes_ok = probes_total = 0
    try:
        if not args.quiet:
            where = f"db {args.db}" if args.db else "in-memory ledger"
            listen = endpoint.url if endpoint else "no http endpoint"
            resumed = (f", resumed {runtime.recovered_blocks} blocks"
                       if runtime.recovered_blocks else "")
            print(f"serving {args.scenario} on {where} ({listen}){resumed}")
        if args.trace:
            runtime.load_trace(args.trace)
        carry = 0.0
        ticks = max(1, round(args.duration / args.tick))
        for _ in range(ticks):
            if stop_requested:
                break
            if not args.trace:
                due = args.rate * args.tick + carry
                count = int(due)
                carry = due - count
                runtime.submit_many(count, client="serve")
            runtime.tick()
            if probing:
                probes_total += 1
                probes_ok += 1 if _probe(endpoint.url) else 0
        settle_ticks = max(0, round(args.settle / args.tick))
        for _ in range(settle_ticks):
            if stop_requested:
                break
            runtime.tick()
            if probing:
                probes_total += 1
                probes_ok += 1 if _probe(endpoint.url) else 0
        snapshot = runtime.metrics_snapshot()
        result = runtime.result()
        runtime.stop()
    finally:
        if endpoint is not None:
            endpoint.stop()
        if not runtime.stopped:
            runtime.stop()
        for signum in installed:
            signal.signal(signum, signal.SIG_DFL)

    availability = probes_ok / probes_total if probes_total else None
    if not args.quiet:
        ingress = snapshot["ingress"]
        print(f"  streamed {ingress['accepted'] + ingress['deferred']} "
              f"accepted+deferred / {ingress['rejected']} rejected "
              f"(queue limit {ingress['queue_limit']})")
        print(f"  injected / committed : {snapshot['injected']} / "
              f"{snapshot['committed_this_run']} "
              f"({snapshot['committed_fraction']:.1%})")
        if snapshot["recovered_commits"]:
            print(f"  recovered commits    : {snapshot['recovered_commits']} "
                  f"(from {snapshot['recovered_blocks']} persisted blocks)")
        ledger = snapshot["ledger"]
        if ledger.get("durable"):
            print(f"  ledger height        : {ledger['height']} "
                  f"-> {ledger['db']}")
        if availability is not None:
            print(f"  /metrics availability: {availability:.1%} "
                  f"({probes_ok}/{probes_total} probes)")
        if stop_requested:
            print("  stopped early on signal")
    if args.json:
        path = result.save(args.json)
        if not args.quiet:
            print(f"  wrote {path}")
    if (args.min_availability is not None and availability is not None
            and availability < args.min_availability):
        print(f"error: /metrics availability {availability:.1%} below "
              f"required {args.min_availability:.1%}", file=sys.stderr)
        return 1
    return 0


def cmd_service(args: argparse.Namespace) -> int:
    if args.service_command == "inspect":
        return _cmd_inspect(args)
    raise ReproError(f"unknown service command {args.service_command!r}")


def _cmd_inspect(args: argparse.Namespace) -> int:
    audit = audit_chain(args.db)
    if args.json:
        print(json.dumps(audit, indent=2))
        return 0
    rows = [
        ["height", audit["height"]],
        ["transactions", audit["transactions"]],
        ["contiguous", "yes" if audit["contiguous"] else "NO"],
        ["unique elements", audit["elements"]["unique"]],
        ["element bytes", audit["elements"]["total_bytes"]],
        ["batches journaled", audit["batches_journaled"]],
        ["opens", audit["opens"]],
        ["first block at", "-" if audit["first_timestamp"] is None
         else f"{audit['first_timestamp']:.2f} s"],
        ["last block at", "-" if audit["last_timestamp"] is None
         else f"{audit['last_timestamp']:.2f} s"],
    ]
    print(render_table(["field", "value"], rows,
                       title=f"ledger audit: {audit['path']}"))
    if audit["tx_kinds"]:
        kind_rows = [[kind, count]
                     for kind, count in audit["tx_kinds"].items()]
        print()
        print(render_table(["payload kind", "transactions"], kind_rows))
    membership = audit.get("membership")
    if membership:
        member_rows = [
            ["epochs", membership["epochs"]],
            ["joins / leaves", f"{membership['joins']} / "
                               f"{membership['leaves']}"],
            ["current members", ", ".join(membership["current_members"])],
            ["epoch contiguity", "yes" if membership["contiguous"] else "NO"],
        ]
        print()
        print(render_table(["field", "value"], member_rows,
                           title="membership journal"))
    return 0
