"""Durable sqlite persistence for service-mode ledgers.

Batch experiments keep the ledger in memory and throw it away with the
process; a long-running service needs the committed chain to survive restarts.
:class:`SqliteLedger` extends the ideal sequencer with a write-ahead of every
cut block into a sqlite database — one transaction per block, flushed before
any application observes it — so a process killed mid-run loses at most the
block being written, never a block an application acted on.

The module also carries the payload codec (Setchain objects ↔ JSON rows), the
``sqlite`` entry for the :mod:`repro.topology` ledger-backend registry, and
:func:`audit_chain`, which re-opens a persisted database offline and checks
the chain (``repro service inspect``).

The database path is deliberately *not* an :class:`~repro.config.ExperimentConfig`
field: configs are echoed byte-for-byte into ``RunResult`` artifacts, and the
golden artifacts of PRs 3-5 must stay identical.  Service entry points bind a
path with the :func:`ledger_db` context manager instead; outside it the
backend runs on ``:memory:`` and behaves exactly like the ideal ledger.
"""

from __future__ import annotations

import itertools
import json
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from ..compressor.base import CompressedBatch
from ..config import ExperimentConfig
from ..core.types import EpochProof, HashBatch
from ..errors import ConfigurationError, LedgerError
from ..ledger import types as ledger_types
from ..ledger.abci import LedgerInterface
from ..ledger.ideal import IdealLedger
from ..ledger.types import Block, Transaction
from ..net import message as net_message
from ..sim.scheduler import Simulator
from ..topology.plugins import LedgerBackend, register_ledger_backend
from ..workload import elements as elements_mod
from ..workload.elements import Element

_SCHEMA = """
CREATE TABLE IF NOT EXISTS blocks (
    height    INTEGER PRIMARY KEY,
    proposer  TEXT NOT NULL,
    timestamp REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS txs (
    height     INTEGER NOT NULL REFERENCES blocks(height),
    position   INTEGER NOT NULL,
    tx_id      INTEGER NOT NULL,
    origin     TEXT NOT NULL,
    size_bytes INTEGER NOT NULL,
    created_at REAL,
    kind       TEXT NOT NULL,
    payload    TEXT NOT NULL,
    PRIMARY KEY (height, position)
);
CREATE TABLE IF NOT EXISTS batches (
    batch_hash TEXT PRIMARY KEY,
    items      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS membership (
    epoch            INTEGER PRIMARY KEY,
    at               REAL NOT NULL,
    effective_height INTEGER NOT NULL,
    members          TEXT NOT NULL,
    f                INTEGER NOT NULL,
    quorum           INTEGER NOT NULL,
    reason           TEXT NOT NULL,
    node             TEXT
);
"""


# -- payload codec --------------------------------------------------------------


def encode_payload(payload: object) -> tuple[str, dict[str, Any]]:
    """Encode a ledger payload as a ``(kind, json-safe dict)`` pair.

    Covers every payload the three algorithms append: raw elements and
    epoch-proofs (vanilla), compressed batches (compresschain), and
    hash-batches (hashchain).  Unknown payloads become opaque rows that audit
    cleanly but are skipped on replay.
    """
    if isinstance(payload, Element):
        return "element", {
            "element_id": payload.element_id, "client": payload.client,
            "size_bytes": payload.size_bytes, "body_digest": payload.body_digest,
            "signature": payload.signature.hex(), "created_at": payload.created_at,
            "valid": payload.valid}
    if isinstance(payload, EpochProof):
        return "epoch-proof", {
            "epoch_number": payload.epoch_number, "epoch_hash": payload.epoch_hash,
            "signature": payload.signature.hex(), "signer": payload.signer,
            "size_bytes": payload.size_bytes}
    if isinstance(payload, HashBatch):
        return "hash-batch", {
            "batch_hash": payload.batch_hash, "signature": payload.signature.hex(),
            "signer": payload.signer, "size_bytes": payload.size_bytes}
    if isinstance(payload, CompressedBatch):
        items = [list(encode_payload(item)) for item in payload.items]
        return "compressed-batch", {
            "items": items, "compressed_size": payload.compressed_size,
            "original_size": payload.original_size, "codec": payload.codec}
    return "opaque", {"repr": repr(payload)}


def decode_payload(kind: str, data: dict[str, Any]) -> object | None:
    """Rebuild a ledger payload from its persisted form (``None`` for opaque)."""
    if kind == "element":
        return Element(element_id=int(data["element_id"]), client=data["client"],
                       size_bytes=int(data["size_bytes"]),
                       body_digest=data["body_digest"],
                       signature=bytes.fromhex(data["signature"]),
                       created_at=float(data["created_at"]),
                       valid=bool(data["valid"]))
    if kind == "epoch-proof":
        return EpochProof(epoch_number=int(data["epoch_number"]),
                          epoch_hash=data["epoch_hash"],
                          signature=bytes.fromhex(data["signature"]),
                          signer=data["signer"],
                          size_bytes=int(data["size_bytes"]))
    if kind == "hash-batch":
        return HashBatch(batch_hash=data["batch_hash"],
                         signature=bytes.fromhex(data["signature"]),
                         signer=data["signer"], size_bytes=int(data["size_bytes"]))
    if kind == "compressed-batch":
        items = tuple(item for item in
                      (decode_payload(k, d) for k, d in data["items"])
                      if item is not None)
        return CompressedBatch(items=items,
                               compressed_size=int(data["compressed_size"]),
                               original_size=int(data["original_size"]),
                               codec=data["codec"])
    return None


def _max_element_id(payload: object) -> int:
    """Largest element id carried by ``payload`` (-1 when it carries none)."""
    if isinstance(payload, Element):
        return payload.element_id
    if isinstance(payload, CompressedBatch):
        return max((_max_element_id(item) for item in payload.items), default=-1)
    return -1


# -- database-path binding ------------------------------------------------------

_current_db_path: str | None = None


@contextmanager
def ledger_db(path: str | Path | None) -> Iterator[None]:
    """Bind the database path the ``sqlite`` backend factory opens.

    Deployment construction resolves backends by registry name with a fixed
    factory signature, and the config cannot grow a path field without
    breaking artifact byte-identity — so service entry points bind the path
    around ``build_deployment`` instead.  ``None`` leaves the default
    (``:memory:``) in place.
    """
    global _current_db_path
    previous = _current_db_path
    _current_db_path = str(path) if path is not None else previous
    try:
        yield
    finally:
        _current_db_path = previous


def current_db_path() -> str:
    """The bound database path, defaulting to in-memory."""
    return _current_db_path if _current_db_path is not None else ":memory:"


# -- the durable ledger ---------------------------------------------------------


class SqliteLedger(IdealLedger):
    """The ideal sequencer with a durable sqlite chain behind it.

    On a fresh database this is behaviourally identical to
    :class:`IdealLedger` — same block cuts, same notification order, same
    simulated timings — so fault-free runs produce byte-identical
    ``RunResult`` artifacts.  On an existing database it resumes block
    numbering after the persisted height and can replay the persisted chain
    into freshly subscribed applications.
    """

    def __init__(self, sim: Simulator, config=None,
                 path: str | Path = ":memory:") -> None:
        super().__init__(sim, config)
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._closed = False
        #: Height already in the database when this process opened it.
        self.resumed_from = self._persisted_height()
        self._height = self.resumed_from
        self._bump_meta("opens", 1)

    # -- durability -------------------------------------------------------------

    def _persist_block(self, block: Block) -> None:
        rows = []
        max_element = -1
        for position, tx in enumerate(block.transactions):
            kind, data = encode_payload(tx.payload)
            max_element = max(max_element, _max_element_id(tx.payload))
            rows.append((block.height, position, tx.tx_id, tx.origin,
                         tx.size_bytes, tx.created_at, kind, json.dumps(data)))
        max_tx = max((tx.tx_id for tx in block.transactions), default=-1)
        with self._conn:  # one transaction per block: all-or-nothing
            self._conn.execute(
                "INSERT INTO blocks (height, proposer, timestamp) VALUES (?, ?, ?)",
                (block.height, block.proposer, block.timestamp))
            self._conn.executemany(
                "INSERT INTO txs VALUES (?, ?, ?, ?, ?, ?, ?, ?)", rows)
            self._raise_meta("max_tx_id", max_tx)
            self._raise_meta("max_element_id", max_element)

    def _raise_meta(self, key: str, value: int) -> None:
        """Monotonically raise an integer meta entry (within a transaction)."""
        if value < 0:
            return
        current = self._meta_int(key)
        if current is None or value > current:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, str(value)))

    def _bump_meta(self, key: str, delta: int) -> None:
        current = self._meta_int(key) or 0
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, str(current + delta)))

    def _meta_int(self, key: str) -> int | None:
        row = self._conn.execute("SELECT value FROM meta WHERE key = ?",
                                 (key,)).fetchone()
        return int(row[0]) if row is not None else None

    def _persisted_height(self) -> int:
        row = self._conn.execute("SELECT MAX(height) FROM blocks").fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    # -- restart support ---------------------------------------------------------

    def persisted_blocks(self) -> list[Block]:
        """The durable chain, decoded back into :class:`Block` objects."""
        blocks: list[Block] = []
        for height, proposer, timestamp in self._conn.execute(
                "SELECT height, proposer, timestamp FROM blocks ORDER BY height"):
            txs = []
            for tx_id, origin, size_bytes, created_at, kind, payload in \
                    self._conn.execute(
                        "SELECT tx_id, origin, size_bytes, created_at, kind, "
                        "payload FROM txs WHERE height = ? ORDER BY position",
                        (height,)):
                decoded = decode_payload(kind, json.loads(payload))
                if decoded is None:
                    continue  # opaque payloads audit but do not replay
                txs.append(Transaction(payload=decoded, size_bytes=size_bytes,
                                       origin=origin, tx_id=tx_id,
                                       created_at=created_at))
            blocks.append(Block(height=height, transactions=tuple(txs),
                                proposer=proposer, timestamp=timestamp))
        return blocks

    def replay_persisted(self, blocks: list[Block] | None = None) -> int:
        """Feed the persisted chain to every subscribed application.

        Called once at service restart, after the deployment is built (so all
        servers are subscribed) and before the simulator advances.  Replayed
        blocks are already durable and are not re-persisted.
        """
        if blocks is None:
            blocks = self.persisted_blocks()
        for block in blocks:
            for tx in block.transactions:
                self.inclusion_height[tx.tx_id] = block.height
            for app in list(self._apps):
                app.finalize_block(block)
        return len(blocks)

    def advance_id_counters(self) -> None:
        """Move the global element/tx/message counters past every persisted id.

        A restarted process starts its counters at zero; without this, new
        elements and transactions would collide with persisted ids and be
        dropped as duplicates.  No-op on a fresh database (so fresh-run
        artifacts stay byte-identical with the in-memory backend).
        """
        max_tx = self._meta_int("max_tx_id")
        max_element = self._meta_int("max_element_id")
        if max_tx is None and max_element is None:
            return
        if max_element is not None:
            current = next(elements_mod._element_counter)
            elements_mod._element_counter = itertools.count(
                max(current, max_element + 1))
        if max_tx is not None:
            current = next(ledger_types._tx_counter)
            ledger_types._tx_counter = itertools.count(max(current, max_tx + 1))
            current = next(net_message._msg_counter)
            net_message._msg_counter = itertools.count(max(current, max_tx + 1))

    # -- out-of-band batch journal ----------------------------------------------

    def journal_batches(self, batches: dict[str, tuple[object, ...]]) -> int:
        """Persist hashchain batch contents (hash → items), idempotently.

        Hashchain keeps batch contents out-of-band (only 139-byte hash-batches
        reach the ledger), so the chain alone cannot rebuild the set.  The
        service checkpoints every server's :class:`BatchStore` here; restart
        preloads the stores from this journal before replaying the chain.
        """
        rows = []
        max_element = -1
        for batch_hash, items in batches.items():
            encoded = [list(encode_payload(item)) for item in items]
            for item in items:
                max_element = max(max_element, _max_element_id(item))
            rows.append((batch_hash, json.dumps(encoded)))
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO batches (batch_hash, items) VALUES (?, ?)",
                rows)
            # Hashchain elements reach the database only through this journal
            # (the chain carries 139-byte hashes), so the id high-water mark a
            # restart advances past must be raised here too.
            self._raise_meta("max_element_id", max_element)
        return len(rows)

    def journaled_batches(self) -> dict[str, tuple[object, ...]]:
        """The persisted batch journal, decoded."""
        batches: dict[str, tuple[object, ...]] = {}
        for batch_hash, items in self._conn.execute(
                "SELECT batch_hash, items FROM batches"):
            decoded = tuple(item for item in
                            (decode_payload(k, d) for k, d in json.loads(items))
                            if item is not None)
            batches[batch_hash] = decoded
        return batches

    # -- membership-epoch journal -------------------------------------------------

    def journal_membership(self, epochs: "list[dict[str, Any]]") -> int:
        """Persist the membership timeline (full rewrite, idempotent).

        The timeline is tiny (one row per join/leave) and append-only in
        memory, so each checkpoint rewrites it whole — a restart, or an
        offline ``repro service inspect``, then sees every epoch the run
        went through, and :func:`audit_chain` can verify their contiguity.
        """
        rows = [(epoch["index"], epoch["at"], epoch["effective_height"],
                 json.dumps(list(epoch["members"])), epoch["f"],
                 epoch["quorum"], epoch["reason"], epoch.get("node"))
                for epoch in epochs]
        with self._conn:
            self._conn.execute("DELETE FROM membership")
            self._conn.executemany(
                "INSERT INTO membership VALUES (?, ?, ?, ?, ?, ?, ?, ?)", rows)
        return len(rows)

    def journaled_membership(self) -> "list[dict[str, Any]]":
        """The persisted membership timeline, decoded (empty for static runs)."""
        epochs = []
        for index, at, effective, members, f, quorum, reason, node in \
                self._conn.execute(
                    "SELECT epoch, at, effective_height, members, f, quorum, "
                    "reason, node FROM membership ORDER BY epoch"):
            entry: dict[str, Any] = {
                "index": index, "at": at, "effective_height": effective,
                "members": json.loads(members), "f": f, "quorum": quorum,
                "reason": reason}
            if node is not None:
                entry["node"] = node
            epochs.append(entry)
        return epochs

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Commit and release the database (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._conn.commit()
        self._conn.close()

    def abort(self) -> None:
        """Release the database *without* committing (idempotent).

        Models a process crash: any write not yet transaction-committed is
        rolled back, leaving exactly the durable block prefix.
        """
        if self._closed:
            return
        self._closed = True
        self._conn.rollback()
        self._conn.close()

    @property
    def closed(self) -> bool:
        return self._closed


@register_ledger_backend("sqlite")
def _sqlite_backend(sim: Simulator, network, n: int,
                    config: ExperimentConfig) -> tuple[LedgerBackend, list[LedgerInterface]]:
    """The durable sequencer; opens the path bound by :func:`ledger_db`."""
    ledger = SqliteLedger(sim, config.ledger, path=current_db_path())
    ledger.advance_id_counters()
    return ledger, [ledger.handle_for(f"server-{i}") for i in range(n)]


# -- offline audit ---------------------------------------------------------------


def audit_chain(path: str | Path) -> dict[str, Any]:
    """Re-open a persisted ledger and audit the chain without a simulator.

    Checks height contiguity (heights ``1..H`` with no gaps) and summarises
    what the chain carries: transaction kinds, appending servers, distinct
    element ids and bytes, the out-of-band batch journal, and id/open
    counters.  When the ledger journaled a membership timeline, the epochs
    are audited too: indices contiguous from 1, activation heights
    non-decreasing, and each join/leave changing the member set by exactly
    its recorded node.  Raises :class:`LedgerError` on a broken chain or
    membership journal and :class:`ConfigurationError` when the file is
    missing or not a ledger.
    """
    db = Path(path)
    if not db.exists():
        raise ConfigurationError(f"no ledger database at {db}")
    conn = sqlite3.connect(str(db))
    try:
        try:
            heights = [row[0] for row in conn.execute(
                "SELECT height FROM blocks ORDER BY height")]
        except sqlite3.DatabaseError as error:
            raise ConfigurationError(
                f"{db} is not a repro ledger database: {error}") from error
        contiguous = heights == list(range(1, len(heights) + 1))
        if not contiguous:
            raise LedgerError(
                f"persisted chain in {db} has non-contiguous heights "
                f"(got {len(heights)} blocks, max height "
                f"{heights[-1] if heights else 0})")
        kinds: dict[str, int] = {}
        origins: dict[str, int] = {}
        element_ids: set[int] = set()
        element_bytes = 0
        tx_count = 0
        for origin, kind, payload in conn.execute(
                "SELECT origin, kind, payload FROM txs"):
            tx_count += 1
            kinds[kind] = kinds.get(kind, 0) + 1
            origins[origin] = origins.get(origin, 0) + 1
            decoded = decode_payload(kind, json.loads(payload))
            if isinstance(decoded, Element):
                element_ids.add(decoded.element_id)
                element_bytes += decoded.size_bytes
            elif isinstance(decoded, CompressedBatch):
                for item in decoded.items:
                    if isinstance(item, Element):
                        element_ids.add(item.element_id)
                        element_bytes += item.size_bytes
        timestamps = conn.execute(
            "SELECT MIN(timestamp), MAX(timestamp) FROM blocks").fetchone()
        batch_rows = conn.execute("SELECT COUNT(*) FROM batches").fetchone()[0]
        meta = {key: value for key, value in conn.execute(
            "SELECT key, value FROM meta")}
        membership = _audit_membership(conn, db)
        report = {
            "path": str(db),
            "height": len(heights),
            "blocks": len(heights),
            "transactions": tx_count,
            "contiguous": contiguous,
            "tx_kinds": dict(sorted(kinds.items())),
            "origins": dict(sorted(origins.items())),
            "elements": {"unique": len(element_ids),
                         "total_bytes": element_bytes},
            "batches_journaled": batch_rows,
            "first_timestamp": timestamps[0],
            "last_timestamp": timestamps[1],
            "opens": int(meta.get("opens", 0)),
            "max_tx_id": int(meta["max_tx_id"]) if "max_tx_id" in meta else None,
            "max_element_id": (int(meta["max_element_id"])
                               if "max_element_id" in meta else None),
        }
        if membership is not None:
            # Only ledgers that journaled a membership timeline grow this
            # block; static-run audits keep the earlier report shape.
            report["membership"] = membership
        return report
    finally:
        conn.close()


def _audit_membership(conn: sqlite3.Connection,
                      db: Path) -> dict[str, Any] | None:
    """Audit the journaled membership timeline (None when none was journaled).

    The invariants mirror :class:`repro.core.membership.MembershipLog`:
    epoch indices count 1, 2, 3, ... with no gaps; activation heights never
    decrease; and every non-initial epoch's member set differs from its
    predecessor by exactly the one node it records joining or leaving.
    """
    try:
        rows = list(conn.execute(
            "SELECT epoch, at, effective_height, members, reason, node "
            "FROM membership ORDER BY epoch"))
    except sqlite3.OperationalError:
        return None  # database predates the membership journal
    if not rows:
        return None
    indices = [row[0] for row in rows]
    if indices != list(range(1, len(rows) + 1)):
        raise LedgerError(
            f"membership journal in {db} has non-contiguous epochs "
            f"(got indices {indices})")
    previous_height = None
    previous_members: set[str] | None = None
    joins = leaves = 0
    for index, _at, effective, members_json, reason, node in rows:
        if previous_height is not None and effective < previous_height:
            raise LedgerError(
                f"membership journal in {db} has a decreasing activation "
                f"height at epoch {index} ({effective} < {previous_height})")
        previous_height = effective
        members = set(json.loads(members_json))
        if previous_members is not None:
            if reason == "join":
                joins += 1
                expected = previous_members | {node}
            elif reason == "leave":
                leaves += 1
                expected = previous_members - {node}
            else:
                raise LedgerError(
                    f"membership journal in {db} has epoch {index} with "
                    f"unknown reason {reason!r}")
            if node is None or members != expected:
                raise LedgerError(
                    f"membership journal in {db} is inconsistent at epoch "
                    f"{index}: a {reason} of {node!r} does not connect "
                    f"{sorted(previous_members)} to {sorted(members)}")
        previous_members = members
    return {"epochs": len(rows), "joins": joins, "leaves": leaves,
            "current_members": sorted(previous_members or ()),
            "contiguous": True}
