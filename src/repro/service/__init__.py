"""Service mode: Setchain as a long-running process instead of a batch run.

* :class:`~repro.service.runtime.ServiceRuntime` — streamed ingest with
  bounded-queue backpressure over a ticking deployment;
* :class:`~repro.service.persistence.SqliteLedger` — the durable ``sqlite``
  ledger backend (chain + batch journal survive restarts);
* :class:`~repro.service.http.MetricsEndpoint` — ``GET /metrics`` /
  ``/healthz`` on a stdlib HTTP server;
* the ``service/`` scenario family and the ``repro serve`` /
  ``repro service inspect`` CLI entry points.

Attributes resolve lazily (PEP 562) so importing :mod:`repro.service` — which
the topology builtins do to register the ``sqlite`` backend — never drags the
whole API layer in at registry-load time.
"""

from __future__ import annotations

_EXPORTS = {
    "ServiceRuntime": ("repro.service.runtime", "ServiceRuntime"),
    "MetricsEndpoint": ("repro.service.http", "MetricsEndpoint"),
    "SqliteLedger": ("repro.service.persistence", "SqliteLedger"),
    "ledger_db": ("repro.service.persistence", "ledger_db"),
    "audit_chain": ("repro.service.persistence", "audit_chain"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):  # type: ignore[no-untyped-def]
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), attr)
