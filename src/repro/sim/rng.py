"""Deterministic random number generation for reproducible simulations.

Model components must never touch the global :mod:`random` state; they draw
from a :class:`DeterministicRNG` owned by the simulator, or from a stream
derived from it with :func:`derive_seed` so that adding a component does not
perturb the randomness seen by others.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    The derivation is stable across Python versions and processes (it does not
    rely on ``hash()``), so the same ``(seed, labels)`` pair always produces
    the same stream.
    """
    material = repr((int(base_seed),) + tuple(str(x) for x in labels)).encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


class DeterministicRNG:
    """Thin wrapper over :class:`random.Random` with stream derivation."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def derive(self, *labels: object) -> "DeterministicRNG":
        """Return an independent RNG stream labelled by ``labels``."""
        return DeterministicRNG(derive_seed(self.seed, *labels))

    # Delegated draws -------------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def randint(self, lo: int, hi: int) -> int:
        return self._random.randint(lo, hi)

    def randbytes(self, n: int) -> bytes:
        return self._random.randbytes(n)

    def choice(self, seq):  # type: ignore[no-untyped-def]
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:  # type: ignore[no-untyped-def]
        self._random.shuffle(seq)

    def sample(self, population, k: int):  # type: ignore[no-untyped-def]
        return self._random.sample(population, k)
