"""The simulation scheduler: a virtual clock driving an event queue."""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationError
from .events import Callback, Event, EventQueue
from .rng import DeterministicRNG


class Simulator:
    """Single-threaded discrete-event simulator.

    The simulator owns the virtual clock (:attr:`now`), an event queue, and a
    deterministic random number generator shared by all model components so a
    given seed always reproduces the same schedule.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide RNG.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self.rng = DeterministicRNG(seed)
        #: Number of events executed so far (useful for progress/limits).
        self.events_executed = 0
        #: Optional hard cap on executed events; ``None`` means unlimited.
        self.max_events: int | None = None

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def pending_events(self) -> int:
        """Number of live events waiting in the queue."""
        return len(self._queue)

    # -- scheduling -----------------------------------------------------------

    def call_at(self, time: float, callback: Callback, priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Scheduling in the past raises :class:`SimulationError` — model code
        should always schedule at ``now`` or later.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, current time is {self._now:.6f}"
            )
        return self._queue.push(time, callback, priority)

    def call_in(self, delay: float, callback: Callback, priority: int = 0) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, callback, priority)

    def call_soon(self, callback: Callback, priority: int = 0) -> Event:
        """Schedule ``callback`` at the current time, after already-queued events."""
        return self._queue.push(self._now, callback, priority)

    # -- storm scheduling -------------------------------------------------------

    def call_at_storm(self, time: float, handler: Callable[[list], None],
                      payload: object, key: object, priority: int = 0) -> Event:
        """Storm variant of :meth:`call_at`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, current time is {self._now:.6f}"
            )
        return self._queue.push_storm(time, handler, payload, key, priority)

    def call_in_storm(self, delay: float, handler: Callable[[list], None],
                      payload: object, key: object, priority: int = 0) -> Event:
        """Schedule a batchable event ``delay`` seconds from now.

        Consecutive storm events with identical ``(time, priority, key)`` are
        dispatched as one ``handler(payloads)`` call — see
        :meth:`~repro.sim.events.EventQueue.push_storm` for the contract.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push_storm(self._now + delay, handler, payload, key,
                                      priority)

    def call_soon_storm(self, handler: Callable[[list], None], payload: object,
                        key: object, priority: int = 0) -> Event:
        """Storm variant of :meth:`call_soon`."""
        return self._queue.push_storm(self._now, handler, payload, key, priority)

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Run the earliest pending event.  Returns ``False`` if the queue is empty."""
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError("event queue produced an event in the past")
        self._now = event.time
        self.events_executed += 1
        if event.storm_key is None:
            event.callback()
        else:
            # Scalar dispatch of a storm event: a one-element run.  The
            # budgeted path never batches, so budget accounting stays exact.
            event.callback([event.payload])
        return True

    def _drain(self, horizon: float) -> None:
        """Execute every due event up to ``horizon`` (the shared main loop).

        The common, unbudgeted case fuses the queue's peek/pop pair into a
        single :meth:`~repro.sim.events.EventQueue.pop_due` heap access per
        event and skips the :meth:`step` call frame entirely; with an event
        budget the peek-first formulation is kept so exhausting the budget
        never loses an unexecuted event.
        """
        queue = self._queue
        if self.max_events is None:
            pop_due = queue.pop_due
            take_storm_run = queue.take_storm_run
            while True:
                event = pop_due(horizon)
                if event is None:
                    return
                self._now = event.time
                key = event.storm_key
                if key is None:
                    self.events_executed += 1
                    event.callback()
                    continue
                # Storm dispatch: drain the whole same-instant run in one
                # handler call.  Every member still counts as an executed
                # event, so progress counters match the scalar schedule.
                payloads = [event.payload]
                run = take_storm_run(event.time, event.priority, key, payloads)
                self.events_executed += 1 + run
                event.callback(payloads)
        else:
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > horizon:
                    return
                if self.events_executed >= self.max_events:
                    raise SimulationError(
                        f"event budget of {self.max_events} exhausted at t={self._now:.3f}"
                    )
                self.step()

    def run_until(self, end_time: float) -> None:
        """Run events until the clock reaches ``end_time`` (inclusive).

        The clock is advanced to exactly ``end_time`` when the queue drains or
        the next event lies beyond the horizon, so repeated calls compose.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is before current time {self._now}"
            )
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            self._drain(end_time)
            self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run_until_idle(self, max_time: float | None = None) -> None:
        """Run until no events remain, optionally bounded by ``max_time``."""
        horizon = float("inf") if max_time is None else max_time
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            self._drain(horizon)
            if max_time is not None:
                self._now = max(self._now, max_time)
        finally:
            self._running = False

    # -- conditions -----------------------------------------------------------

    def run_until_condition(self, predicate: Callable[[], bool],
                            check_interval: float = 0.1,
                            max_time: float = float("inf")) -> bool:
        """Run until ``predicate()`` is true, polling every ``check_interval``.

        Returns ``True`` if the predicate became true, ``False`` if the
        simulation drained or hit ``max_time`` first.
        """
        if predicate():
            return True
        while self._now < max_time:
            next_time = self._queue.peek_time()
            if next_time is None:
                return predicate()
            target = min(next_time, max_time)
            self.run_until(target)
            if predicate():
                return True
        return predicate()
