"""Higher-level scheduling helpers: timers and periodic tasks."""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationError
from .events import Event
from .scheduler import Simulator


class Timer:
    """A restartable one-shot timer.

    Used by collectors (flush after ``collector_timeout``) and by Hashchain's
    ``Request_batch`` wait.  ``start`` replaces any pending expiry.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Event | None = None

    @property
    def active(self) -> bool:
        """True while an expiry is pending."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timer delay: {delay}")
        self.cancel()
        self._event = self._sim.call_in(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Invoke a callback at a fixed period until stopped.

    The CometBFT block-production loop and client injection loops are periodic
    tasks.  The first invocation happens ``offset`` seconds after :meth:`start`.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], None], offset: float | None = None) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._offset = period if offset is None else offset
        self._event: Event | None = None
        self._stopped = True
        #: Number of times the callback has fired.
        self.fired = 0

    @property
    def running(self) -> bool:
        return not self._stopped

    @property
    def period(self) -> float:
        return self._period

    def start(self) -> None:
        """Begin firing.  Idempotent while running."""
        if not self._stopped:
            return
        self._stopped = False
        self._event = self._sim.call_in(self._offset, self._tick)

    def stop(self) -> None:
        """Stop firing.  A tick already being executed completes normally."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def set_period(self, period: float) -> None:
        """Change the period.  Any pending tick is re-armed ``period`` from now."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._period = period
        if not self._stopped and self._event is not None:
            self._event.cancel()
            self._event = self._sim.call_in(self._period, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.fired += 1
        self._callback()
        if not self._stopped:
            self._event = self._sim.call_in(self._period, self._tick)
