"""Discrete-event simulation kernel.

This package replaces the paper's real-time Docker cluster with a virtual
clock.  Everything in the reproduction — network delivery, block production,
collector timeouts, client injection — is expressed as events scheduled on a
single :class:`~repro.sim.scheduler.Simulator`.

Typical usage::

    from repro.sim import Simulator

    sim = Simulator(seed=42)
    sim.call_at(1.0, lambda: print("one second of simulated time"))
    sim.run_until(10.0)
"""

from .events import Event, EventQueue
from .scheduler import Simulator
from .process import PeriodicTask, Timer
from .rng import DeterministicRNG, derive_seed

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "PeriodicTask",
    "Timer",
    "DeterministicRNG",
    "derive_seed",
]
