"""Event primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
breaks ties deterministically in insertion order, which keeps simulations
reproducible regardless of callback identity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

Callback = Callable[[], None]


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    priority:
        Lower numbers fire first among events scheduled for the same time.
    seq:
        Monotonic tie-breaker assigned by the queue.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Set by :meth:`cancel`; cancelled events are skipped by the scheduler.
    """

    time: float
    priority: int
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        """Number of live (non-cancelled) events.  O(n); meant for tests/inspection."""
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def push(self, time: float, callback: Callback, priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event handle."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time=time, priority=priority, seq=next(self._counter),
                      callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def discard_cancelled(self) -> None:
        """Compact the heap by removing cancelled entries (O(n))."""
        live = [e for e in self._heap if not e.cancelled]
        heapq.heapify(live)
        self._heap = live
