"""Event primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
breaks ties deterministically in insertion order, which keeps simulations
reproducible regardless of callback identity.

Performance notes (this is the hottest loop in the repository):

* Heap entries are plain ``(time, priority, seq, event)`` tuples, so heap
  sift comparisons run entirely in C — no ``Event.__lt__`` Python frames.
* ``len(queue)`` is O(1): the queue counts cancelled-but-still-heaped
  entries, and :meth:`Event.cancel` notifies its owning queue.
* Cancelled events use lazy deletion (skipped at pop time) with amortised
  compaction: once cancellations outnumber live entries the heap is rebuilt,
  bounding memory and pop cost for cancel-heavy workloads (timers).
* :meth:`pop_due` fuses the scheduler's peek-then-pop pair into one
  heap access per executed event.
* *Storm events* (:meth:`push_storm`) carry a payload and a grouping key
  instead of a closed-over callback: a run of consecutive heap heads with
  identical ``(time, priority, key)`` is dispatched as ONE handler call over
  the collected payload list (:meth:`take_storm_run`), collapsing
  per-message scheduling overhead when many deliveries land on the same
  simulated instant (a broadcast under constant latency, a replayed trace
  tick).  Dispatching a run in one call is observably identical to
  dispatching its members one at a time provided the handler (i) processes
  payloads strictly in order and (ii) never cancels another already-queued
  event of the same storm — the network delivery path satisfies both.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

Callback = Callable[[], None]

#: Compact only past this many cancelled entries (avoids thrashing tiny heaps).
_COMPACT_MIN_CANCELLED = 64


@dataclass(slots=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    priority:
        Lower numbers fire first among events scheduled for the same time.
    seq:
        Monotonic tie-breaker assigned by the queue.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Set by :meth:`cancel`; cancelled events are skipped by the scheduler.
    """

    time: float
    priority: int
    seq: int
    callback: Callback
    cancelled: bool = False
    #: Storm grouping key: ``None`` for ordinary events.  Events whose
    #: ``(time, priority, storm_key)`` match are batchable; their ``callback``
    #: is a handler taking a *list of payloads* rather than no arguments.
    storm_key: object = None
    #: Payload handed to the storm handler (``None`` for ordinary events).
    payload: object = None
    #: Owning queue while the event sits in its heap; cleared on pop so a
    #: late cancel of an already-executed event is a harmless no-op.
    _queue: "EventQueue | None" = field(default=None, repr=False)

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._note_cancelled()


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by time."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        #: Cancelled entries still sitting in the heap (lazy deletion debt).
        self._cancelled = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events.  O(1)."""
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def _note_cancelled(self) -> None:
        """A heaped event was cancelled; compact once debt dominates."""
        self._cancelled += 1
        if (self._cancelled >= _COMPACT_MIN_CANCELLED
                and self._cancelled * 2 >= len(self._heap)):
            self.discard_cancelled()

    def push(self, time: float, callback: Callback, priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event handle."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time, priority, next(self._counter), callback)
        event._queue = self
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    def push_storm(self, time: float, handler: Callable[[list], None],
                   payload: object, key: object, priority: int = 0) -> Event:
        """Schedule a batchable *storm* event.

        ``handler`` is invoked with the list of payloads of every event in
        the dispatched run (a single-element list when nothing batched); no
        per-event closure is allocated.  ``key`` must be non-``None`` and
        compare equal only for events the handler may legally batch.
        """
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        if key is None:
            raise SimulationError("storm events need a non-None grouping key")
        event = Event(time, priority, next(self._counter), handler,
                      storm_key=key, payload=payload)
        event._queue = self
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    def take_storm_run(self, time: float, priority: int, key: object,
                       payloads: list) -> int:
        """Pop every consecutive live head matching ``(time, priority, key)``.

        Appends their payloads (in seq order) to ``payloads`` and returns how
        many were taken.  Cancelled heads encountered on the way are discarded
        exactly as the scalar pop path would skip them.
        """
        heap = self._heap
        taken = 0
        while heap:
            head = heap[0]
            event = head[3]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if head[0] != time or head[1] != priority or event.storm_key != key:
                break
            heapq.heappop(heap)
            event._queue = None
            payloads.append(event.payload)
            taken += 1
        return taken

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                self._cancelled -= 1
                continue
            event._queue = None
            return event
        raise SimulationError("pop from empty event queue")

    def pop_due(self, horizon: float) -> Event | None:
        """Pop the earliest live event with ``time <= horizon``, else ``None``.

        Single heap access per returned event — the scheduler's main loop
        uses this instead of a ``peek_time()``/``pop()`` pair.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[3]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if head[0] > horizon:
                return None
            heapq.heappop(heap)
            event._queue = None
            return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]

    def discard_cancelled(self) -> None:
        """Compact the heap by removing cancelled entries (O(n))."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
