"""Cryptographic substrate.

The paper uses SHA-512 for hashing and ed25519 (EdDSA) for signatures, with a
public-key infrastructure so every process knows every other process's public
key.  This package provides:

* :mod:`repro.crypto.hashing` — SHA-512 based canonical hashing of batches and
  epochs (the exact hash the epoch-proofs sign).
* :mod:`repro.crypto.ed25519` — a from-scratch RFC 8032 Ed25519 implementation
  (no third-party dependencies).
* :mod:`repro.crypto.signatures` — the :class:`SignatureScheme` interface with
  an Ed25519 backend and a fast HMAC-based *simulated* backend used for large
  benchmark runs (documented substitution; see DESIGN.md §2).
* :mod:`repro.crypto.keys` — key pairs and the PKI registry.
"""

from .hashing import sha512_hex, hash_batch, hash_epoch, hash_bytes, canonical_bytes_of
from .keys import KeyPair, PublicKeyInfrastructure
from .signatures import (
    SignatureScheme,
    Ed25519Scheme,
    SimulatedScheme,
    make_scheme,
)
from . import ed25519

__all__ = [
    "sha512_hex",
    "hash_batch",
    "hash_epoch",
    "hash_bytes",
    "canonical_bytes_of",
    "KeyPair",
    "PublicKeyInfrastructure",
    "SignatureScheme",
    "Ed25519Scheme",
    "SimulatedScheme",
    "make_scheme",
    "ed25519",
]
