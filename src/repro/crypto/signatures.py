"""Signature schemes behind a common interface.

Two backends:

* :class:`Ed25519Scheme` — the real EdDSA code path (RFC 8032, pure Python).
  Used by default in unit tests and small runs; matches the paper exactly.
* :class:`SimulatedScheme` — an HMAC-SHA512-based stand-in that produces
  64-byte tags verified through the PKI.  It preserves the *interface* and the
  unforgeability assumption of the model (a process that does not hold the
  owner's secret cannot produce a tag that verifies for that owner), while
  being ~1000x faster, which matters for benchmark runs that sign hundreds of
  thousands of batches.  This substitution is recorded in DESIGN.md §2.

Both backends share a positive-verification cache: in a Setchain deployment
the *same* ``(owner, message, signature)`` triple is re-verified by every
server that sees the hash-batch or epoch-proof, so each scheme memoises
successful verifications.  Only positives are cached — a signature that
verified once can never stop verifying, because the PKI rejects re-binding
an owner to a different key — so failures (e.g. an owner registered after a
first failed lookup) are always re-checked.
"""

from __future__ import annotations

import hashlib
import hmac
from abc import ABC, abstractmethod
from itertools import islice
from typing import Sequence

from ..errors import ConfigurationError, CryptoError
from . import ed25519
from .keys import KeyPair, PublicKeyInfrastructure, derive_secret_seed


#: Verified-triple cache bound.  When full, only the *oldest half* (FIFO
#: order) is retired: a wholesale clear would force every server in a large
#: run to re-verify the whole working set at once, exactly on the runs big
#: enough to fill the cache.
_VERIFY_CACHE_MAX = 1 << 16


class SignatureScheme(ABC):
    """Sign/verify interface shared by all backends.

    Messages are strings (hex digests, canonical encodings); the scheme is
    responsible for encoding.  ``verify`` resolves the signer's public key via
    the PKI by the *claimed* owner id, and memoises successful verifications
    (every server in a deployment re-verifies the same signed artifacts).
    """

    #: Length of a signature produced by this scheme, in bytes.
    signature_size: int = 64

    def __init__(self, pki: PublicKeyInfrastructure) -> None:
        self.pki = pki
        # Insertion-ordered on purpose: eviction is FIFO, and dict order is
        # deterministic where set order would depend on PYTHONHASHSEED.
        self._verified: dict[tuple[str, str, bytes], None] = {}
        # Verify-cache telemetry: plain int bumps, cheap enough to stay on
        # unconditionally (read post-run by the observability report).
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    @abstractmethod
    def generate_keypair(self, owner: str, deployment_seed: int = 0) -> KeyPair:
        """Create (and register with the PKI) a key pair for ``owner``."""

    @abstractmethod
    def sign(self, keypair: KeyPair, message: str) -> bytes:
        """Sign ``message`` with the private half of ``keypair``."""

    def sign_many(self, keypair: KeyPair,
                  messages: Sequence[str]) -> list[bytes]:
        """Sign a batch; element ``i`` is byte-identical to ``sign(keypair,
        messages[i])``.  Backends share per-key setup across the batch."""
        sign = self.sign
        return [sign(keypair, message) for message in messages]

    def verify(self, owner: str, message: str, signature: bytes) -> bool:
        """True iff ``signature`` over ``message`` verifies for ``owner``'s registered key."""
        key = (owner, message, signature)
        if key in self._verified:
            self.cache_hits += 1
            return True
        self.cache_misses += 1
        if not self._verify(owner, message, signature):
            return False
        self._remember((key,))
        return True

    def verify_many(self, triples: Sequence[tuple[str, str, bytes]]) -> list[bool]:
        """Batch :meth:`verify`: one cache-membership pass, backend batch
        verification of the misses only, one bulk insert of the fresh
        positives.  Verdict ``i`` always equals ``verify(*triples[i])``;
        failures never raise and never poison the rest of the batch.
        """
        cache = self._verified
        results = [True] * len(triples)
        misses: list[int] = []
        for index, triple in enumerate(triples):
            if triple not in cache:
                misses.append(index)
        self.cache_hits += len(triples) - len(misses)
        self.cache_misses += len(misses)
        if misses:
            verdicts = self._verify_many([triples[i] for i in misses])
            fresh: list[tuple[str, str, bytes]] = []
            for index, verdict in zip(misses, verdicts):
                if verdict:
                    fresh.append(triples[index])
                else:
                    results[index] = False
            if fresh:
                self._remember(fresh)
        return results

    def _remember(self, keys: Sequence[tuple[str, str, bytes]]) -> None:
        """Memoise fresh positives, retiring the oldest half when full."""
        cache = self._verified
        if len(cache) >= _VERIFY_CACHE_MAX:
            stale_keys = list(islice(cache, len(cache) // 2))
            self.cache_evictions += len(stale_keys)
            for stale in stale_keys:
                del cache[stale]
        for key in keys:
            cache[key] = None

    @abstractmethod
    def _verify(self, owner: str, message: str, signature: bytes) -> bool:
        """Backend verification (uncached)."""

    def _verify_many(self, triples: Sequence[tuple[str, str, bytes]]) -> list[bool]:
        """Backend batch verification (uncached); override to share work."""
        verify = self._verify
        return [verify(owner, message, signature)
                for owner, message, signature in triples]


class Ed25519Scheme(SignatureScheme):
    """RFC 8032 Ed25519 signatures (pure Python, see :mod:`repro.crypto.ed25519`)."""

    def generate_keypair(self, owner: str, deployment_seed: int = 0) -> KeyPair:
        secret = derive_secret_seed(owner, deployment_seed)
        public = ed25519.generate_public_key(secret)
        keypair = KeyPair(owner=owner, secret=secret, public=public)
        self.pki.register(owner, public)
        return keypair

    def sign(self, keypair: KeyPair, message: str) -> bytes:
        return ed25519.sign(keypair.secret, message.encode())

    def sign_many(self, keypair: KeyPair,
                  messages: Sequence[str]) -> list[bytes]:
        return ed25519.sign_many(keypair.secret,
                                 [message.encode() for message in messages])

    def _verify(self, owner: str, message: str, signature: bytes) -> bool:
        try:
            public = self.pki.public_key_of(owner)
        except CryptoError:
            return False
        return ed25519.verify(public, message.encode(), signature)

    def _verify_many(self, triples: Sequence[tuple[str, str, bytes]]) -> list[bool]:
        # Resolve each distinct owner through the PKI once, then hand the
        # whole batch to the backend (which shares per-key decode work).
        publics: dict[str, bytes | None] = {}
        public_key_of = self.pki.public_key_of
        items: list[tuple[bytes, bytes, bytes]] = []
        slots: list[int] = []
        results = [False] * len(triples)
        for index, (owner, message, signature) in enumerate(triples):
            if owner in publics:
                public = publics[owner]
            else:
                try:
                    public = public_key_of(owner)
                except CryptoError:
                    public = None
                publics[owner] = public
            if public is not None:
                items.append((public, message.encode(), signature))
                slots.append(index)
        for slot, verdict in zip(slots, ed25519.verify_many(items)):
            results[slot] = verdict
        return results


class SimulatedScheme(SignatureScheme):
    """Fast HMAC-based signatures for large simulation runs.

    The "public key" is a commitment ``SHA512(owner || secret)``; a signature
    is ``HMAC-SHA512(secret, owner || message)``.  Verification recomputes the
    tag from the owner's secret, which the verifier obtains through a trusted
    side table held by the scheme itself.  In a real deployment this would be
    unacceptable; in the simulation every scheme instance is shared
    infrastructure and Byzantine components are modelled at the behaviour
    level (they simply never get handed other owners' KeyPair objects), so the
    unforgeability assumption of the system model is preserved.
    """

    def __init__(self, pki: PublicKeyInfrastructure) -> None:
        super().__init__(pki)
        self._secrets: dict[str, bytes] = {}

    def generate_keypair(self, owner: str, deployment_seed: int = 0) -> KeyPair:
        secret = derive_secret_seed(owner, deployment_seed)
        public = hashlib.sha512(owner.encode() + secret).digest()[:32]
        keypair = KeyPair(owner=owner, secret=secret, public=public)
        self.pki.register(owner, public)
        self._secrets[owner] = secret
        return keypair

    def sign(self, keypair: KeyPair, message: str) -> bytes:
        # One-shot C implementation — no HMAC object per signature.
        return hmac.digest(keypair.secret,
                           keypair.owner.encode() + b"|" + message.encode(),
                           "sha512")[:64]

    def sign_many(self, keypair: KeyPair,
                  messages: Sequence[str]) -> list[bytes]:
        # The owner prefix is encoded once; the loop is a single tight
        # comprehension over the C one-shot HMAC.
        secret = keypair.secret
        prefix = keypair.owner.encode() + b"|"
        digest = hmac.digest
        return [digest(secret, prefix + message.encode(), "sha512")[:64]
                for message in messages]

    def _verify(self, owner: str, message: str, signature: bytes) -> bool:
        if not self.pki.knows(owner):
            return False
        secret = self._secrets.get(owner)
        if secret is None:
            return False
        expected = hmac.digest(secret, owner.encode() + b"|" + message.encode(),
                               "sha512")[:64]
        return hmac.compare_digest(expected, signature)

    def _verify_many(self, triples: Sequence[tuple[str, str, bytes]]) -> list[bool]:
        knows = self.pki.knows
        secret_of = self._secrets.get
        digest = hmac.digest
        compare = hmac.compare_digest
        results: list[bool] = []
        append = results.append
        for owner, message, signature in triples:
            secret = secret_of(owner)
            if secret is None or not knows(owner):
                append(False)
                continue
            expected = digest(secret, owner.encode() + b"|" + message.encode(),
                              "sha512")[:64]
            append(compare(expected, signature))
        return results


_SCHEMES = {
    "ed25519": Ed25519Scheme,
    "simulated": SimulatedScheme,
}


def make_scheme(name: str, pki: PublicKeyInfrastructure | None = None) -> SignatureScheme:
    """Factory: build a signature scheme by configuration name."""
    try:
        cls = _SCHEMES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown signature scheme {name!r}; expected one of {sorted(_SCHEMES)}"
        ) from None
    return cls(pki if pki is not None else PublicKeyInfrastructure())
