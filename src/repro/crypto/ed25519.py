"""Pure-Python Ed25519 (RFC 8032) — no external dependencies.

This is a straightforward, readable implementation of the EdDSA signature
scheme over edwards25519 following RFC 8032 §5.1.  It is *not* constant-time
and therefore not suitable for protecting real secrets; in this reproduction
it exists so the signature code path (key generation, signing, verification,
64-byte signatures) matches the paper's ed25519 usage exactly.  Large
benchmark runs use the faster ``SimulatedScheme`` instead (see
:mod:`repro.crypto.signatures`).

Fast path: scalar multiplication uses the dedicated doubling formula
(:func:`_point_double`, RFC 8032 §5.1.4) instead of a generic addition, and
fixed-base multiples of the generator — every ``sign`` computes two of them,
every ``verify`` one — go through a lazily built 4-bit window table
(:func:`_point_mul_base`): 64 precomputed-table additions replace ~253
double-and-add steps.  ``sign`` additionally caches the expanded secret
(scalar, prefix, compressed public key) per seed, so per-signature cost is
one windowed multiplication plus hashing.  None of this changes any emitted
byte: the RFC 8032 test vectors in ``tests/test_crypto_ed25519.py`` pin the
output.
"""

from __future__ import annotations

import hashlib

__all__ = ["generate_public_key", "sign", "verify", "SECRET_KEY_SIZE",
           "PUBLIC_KEY_SIZE", "SIGNATURE_SIZE"]

SECRET_KEY_SIZE = 32
PUBLIC_KEY_SIZE = 32
SIGNATURE_SIZE = 64

# Curve constants for edwards25519 (RFC 8032 §5.1).
_p = 2**255 - 19
_q = 2**252 + 27742317777372353535851937790883648493  # group order
_d = -121665 * pow(121666, _p - 2, _p) % _p


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _p - 2, _p)


# Points are represented in extended homogeneous coordinates (X, Y, Z, T)
# with x = X/Z, y = Y/Z, x*y = T/Z.
_Point = tuple[int, int, int, int]


def _point_add(P: _Point, Q: _Point) -> _Point:
    X1, Y1, Z1, T1 = P
    X2, Y2, Z2, T2 = Q
    A = (Y1 - X1) * (Y2 - X2) % _p
    B = (Y1 + X1) * (Y2 + X2) % _p
    C = 2 * T1 * T2 * _d % _p
    D = 2 * Z1 * Z2 % _p
    E = B - A
    F = D - C
    G = D + C
    H = B + A
    return (E * F % _p, G * H % _p, F * G % _p, E * H % _p)


def _point_double(P: _Point) -> _Point:
    # Dedicated doubling (RFC 8032 §5.1.4): 4M + 4S, vs 9M for _point_add.
    X1, Y1, Z1, _T1 = P
    A = X1 * X1 % _p
    B = Y1 * Y1 % _p
    C = 2 * Z1 * Z1 % _p
    H = A + B
    E = H - (X1 + Y1) * (X1 + Y1) % _p
    G = A - B
    F = C + G
    return (E * F % _p, G * H % _p, F * G % _p, E * H % _p)


def _point_mul(s: int, P: _Point) -> _Point:
    Q: _Point = (0, 1, 1, 0)  # identity
    while s > 0:
        if s & 1:
            Q = _point_add(Q, P)
        P = _point_double(P)
        s >>= 1
    return Q


def _point_equal(P: _Point, Q: _Point) -> bool:
    # x1/z1 == x2/z2  and  y1/z1 == y2/z2
    if (P[0] * Q[2] - Q[0] * P[2]) % _p != 0:
        return False
    if (P[1] * Q[2] - Q[1] * P[2]) % _p != 0:
        return False
    return True


# Base point.
_g_y = 4 * _inv(5) % _p


def _recover_x(y: int, sign: int) -> int | None:
    if y >= _p:
        return None
    x2 = (y * y - 1) * _inv(_d * y * y + 1) % _p
    if x2 == 0:
        if sign:
            return None
        return 0
    # Square root of x2 mod p (p = 5 mod 8).
    x = pow(x2, (_p + 3) // 8, _p)
    if (x * x - x2) % _p != 0:
        x = x * pow(2, (_p - 1) // 4, _p) % _p
    if (x * x - x2) % _p != 0:
        return None
    if (x & 1) != sign:
        x = _p - x
    return x


_g_x = _recover_x(_g_y, 0)
assert _g_x is not None
_G: _Point = (_g_x, _g_y, 1, _g_x * _g_y % _p)

# Fixed-base window table: _BASE_TABLE[i][j] = (j << 4*i) * G for j in 0..15,
# covering 64 four-bit windows (scalars here are < 2^255).  Built lazily on
# the first fixed-base multiplication (~1k point additions, paid once).
_WINDOW_BITS = 4
_WINDOWS = 64
_base_table: list[list[_Point]] | None = None


def _build_base_table() -> list[list[_Point]]:
    global _base_table
    if _base_table is None:
        table: list[list[_Point]] = []
        base = _G
        for _ in range(_WINDOWS):
            row: list[_Point] = [(0, 1, 1, 0)]
            acc = base
            for _ in range((1 << _WINDOW_BITS) - 1):
                row.append(acc)
                acc = _point_add(acc, base)
            table.append(row)
            base = acc  # 16 * previous window base
        _base_table = table
    return _base_table


def _point_mul_base(s: int) -> _Point:
    """``s * G`` through the fixed-base window table (64 additions max)."""
    table = _build_base_table()
    Q: _Point = (0, 1, 1, 0)
    window = 0
    while s > 0:
        w = s & 15
        if w:
            Q = _point_add(Q, table[window][w])
        s >>= 4
        window += 1
    return Q


def _point_compress(P: _Point) -> bytes:
    zinv = _inv(P[2])
    x = P[0] * zinv % _p
    y = P[1] * zinv % _p
    return int.to_bytes(y | ((x & 1) << 255), 32, "little")


def _point_decompress(s: bytes) -> _Point | None:
    if len(s) != 32:
        return None
    y = int.from_bytes(s, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    x = _recover_x(y, sign)
    if x is None:
        return None
    return (x, y, 1, x * y % _p)


def _secret_expand(secret: bytes) -> tuple[int, bytes]:
    if len(secret) != SECRET_KEY_SIZE:
        raise ValueError("bad secret key size")
    h = _sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


# Expanded-key cache: the simulation signs many messages under few seeds, so
# the (scalar, prefix, compressed public key) triple is computed once per seed.
_KEY_CACHE_MAX = 1024
_key_cache: dict[bytes, tuple[int, bytes, bytes]] = {}


def _expanded_key(secret: bytes) -> tuple[int, bytes, bytes]:
    cached = _key_cache.get(secret)
    if cached is None:
        a, prefix = _secret_expand(secret)
        cached = (a, prefix, _point_compress(_point_mul_base(a)))
        if len(_key_cache) >= _KEY_CACHE_MAX:
            _key_cache.clear()
        _key_cache[secret] = cached
    return cached


def generate_public_key(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    return _expanded_key(secret)[2]


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature of ``message`` under ``secret``."""
    a, prefix, A = _expanded_key(secret)
    r = int.from_bytes(_sha512(prefix + message), "little") % _q
    R = _point_compress(_point_mul_base(r))
    h = int.from_bytes(_sha512(R + A + message), "little") % _q
    s = (r + h * a) % _q
    return R + int.to_bytes(s, 32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check a 64-byte signature against a 32-byte public key.  Never raises."""
    if len(public) != PUBLIC_KEY_SIZE or len(signature) != SIGNATURE_SIZE:
        return False
    A = _point_decompress(public)
    if A is None:
        return False
    Rs = signature[:32]
    R = _point_decompress(Rs)
    if R is None:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _q:
        return False
    h = int.from_bytes(_sha512(Rs + public + message), "little") % _q
    sB = _point_mul_base(s)
    hA = _point_mul(h, A)
    return _point_equal(sB, _point_add(R, hA))
