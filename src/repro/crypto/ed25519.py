"""Ed25519 (RFC 8032) — pure Python with an optional C accelerator.

The reference implementation here is a straightforward, readable EdDSA over
edwards25519 following RFC 8032 §5.1.  It is *not* constant-time and
therefore not suitable for protecting real secrets; in this reproduction it
exists so the signature code path (key generation, signing, verification,
64-byte signatures) matches the paper's ed25519 usage exactly.  Large
benchmark runs use the faster ``SimulatedScheme`` instead (see
:mod:`repro.crypto.signatures`).

When the ``cryptography`` wheel is importable (no install is ever attempted),
the public entry points delegate to its OpenSSL-backed Ed25519: signing is
deterministic per RFC 8032, so the emitted bytes are identical to the pure
path and the test vectors pin both.  The pure implementation remains the
fallback and the reference the property tests compare against.

Fast path: scalar multiplication uses the dedicated doubling formula
(:func:`_point_double`, RFC 8032 §5.1.4) instead of a generic addition, and
fixed-base multiples of the generator — every ``sign`` computes two of them,
every ``verify`` one — go through a lazily built window table
(:func:`_point_mul_base`), promoted from 4-bit to 8-bit windows once the
process has done enough fixed-base work to amortise the bigger build.
Verification gets the same treatment on the variable-base side: decompressed
public points are cached per compressed key, and keys that verify repeatedly
earn their own window table (:func:`_mul_public`), so a warm verify is ~96
table additions instead of ~380 double-and-add steps.  Square-root recovery
in :func:`_recover_x` uses the single-exponentiation form from RFC 8032
§5.1.3.  ``sign`` additionally caches the expanded secret (scalar, prefix,
compressed public key) per seed; :func:`sign_many`/:func:`verify_many` batch
those shared lookups across whole collector flushes.  None of this changes
any emitted byte: the RFC 8032 test vectors in
``tests/test_crypto_ed25519.py`` pin the output.
"""

from __future__ import annotations

import hashlib

try:  # optional C accelerator — same RFC 8032 bytes, ~10x faster primitives.
    from cryptography.exceptions import InvalidSignature as _InvalidSignature
    from cryptography.hazmat.primitives.asymmetric.ed25519 import (
        Ed25519PrivateKey as _AccelPrivateKey,
        Ed25519PublicKey as _AccelPublicKey,
    )
    _ACCEL = True
except Exception:  # pragma: no cover - accelerator genuinely absent
    _ACCEL = False

__all__ = ["generate_public_key", "sign", "sign_many", "verify", "verify_many",
           "SECRET_KEY_SIZE", "PUBLIC_KEY_SIZE", "SIGNATURE_SIZE"]

SECRET_KEY_SIZE = 32
PUBLIC_KEY_SIZE = 32
SIGNATURE_SIZE = 64

# Curve constants for edwards25519 (RFC 8032 §5.1).
_p = 2**255 - 19
_q = 2**252 + 27742317777372353535851937790883648493  # group order
_d = -121665 * pow(121666, _p - 2, _p) % _p


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _p - 2, _p)


# Points are represented in extended homogeneous coordinates (X, Y, Z, T)
# with x = X/Z, y = Y/Z, x*y = T/Z.
_Point = tuple[int, int, int, int]


def _point_add(P: _Point, Q: _Point) -> _Point:
    X1, Y1, Z1, T1 = P
    X2, Y2, Z2, T2 = Q
    A = (Y1 - X1) * (Y2 - X2) % _p
    B = (Y1 + X1) * (Y2 + X2) % _p
    C = 2 * T1 * T2 * _d % _p
    D = 2 * Z1 * Z2 % _p
    E = B - A
    F = D - C
    G = D + C
    H = B + A
    return (E * F % _p, G * H % _p, F * G % _p, E * H % _p)


def _point_double(P: _Point) -> _Point:
    # Dedicated doubling (RFC 8032 §5.1.4): 4M + 4S, vs 9M for _point_add.
    X1, Y1, Z1, _T1 = P
    A = X1 * X1 % _p
    B = Y1 * Y1 % _p
    C = 2 * Z1 * Z1 % _p
    H = A + B
    E = H - (X1 + Y1) * (X1 + Y1) % _p
    G = A - B
    F = C + G
    return (E * F % _p, G * H % _p, F * G % _p, E * H % _p)


def _point_mul(s: int, P: _Point) -> _Point:
    Q: _Point = (0, 1, 1, 0)  # identity
    while s > 0:
        if s & 1:
            Q = _point_add(Q, P)
        P = _point_double(P)
        s >>= 1
    return Q


def _point_equal(P: _Point, Q: _Point) -> bool:
    # x1/z1 == x2/z2  and  y1/z1 == y2/z2
    if (P[0] * Q[2] - Q[0] * P[2]) % _p != 0:
        return False
    if (P[1] * Q[2] - Q[1] * P[2]) % _p != 0:
        return False
    return True


# Base point.
_g_y = 4 * _inv(5) % _p


# sqrt(-1) mod p, used to fix up the square root when p = 5 mod 8.
_SQRT_M1 = pow(2, (_p - 1) // 4, _p)


def _recover_x(y: int, sign: int) -> int | None:
    # Candidate x for x^2 = u/v via the single-exponentiation form of
    # RFC 8032 §5.1.3: x = u v^3 (u v^7)^((p-5)/8), avoiding a separate
    # modular inversion (two ~255-bit pows become one).
    if y >= _p:
        return None
    y2 = y * y % _p
    u = (y2 - 1) % _p
    v = (_d * y2 + 1) % _p
    v3 = v * v % _p * v % _p
    uv3 = u * v3 % _p
    x = uv3 * pow(uv3 * v3 % _p * v % _p, (_p - 5) // 8, _p) % _p
    vx2 = v * x % _p * x % _p
    if vx2 != u:
        if vx2 != _p - u:
            return None
        x = x * _SQRT_M1 % _p
    if x == 0:
        if sign:
            return None
        return 0
    if (x & 1) != sign:
        x = _p - x
    return x


_g_x = _recover_x(_g_y, 0)
assert _g_x is not None
_G: _Point = (_g_x, _g_y, 1, _g_x * _g_y % _p)

# Window tables: _build_table(P, bits)[i][j] = (j << bits*i) * P for
# j in 0..2^bits-1, covering all 256-bit scalars.  Built lazily; the
# fixed-base table starts at 4 bits (~1k point additions, paid once) and is
# promoted to 8 bits (32 additions per multiplication instead of 64) once the
# process has done enough fixed-base multiplications to amortise the ~8k-add
# build.  Frequently verified public keys earn tables of their own through
# the same promotion ladder (see _public_entry/_mul_public).
_WINDOW_BITS = 4
_WINDOWS = 64
# 2*d, folded into the T-coordinate product of the inlined addition below.
_d2 = 2 * _d % _p


def _build_table(base: _Point, bits: int) -> list[list[_Point]]:
    windows = -(-256 // bits)
    table: list[list[_Point]] = []
    for _ in range(windows):
        row: list[_Point] = [(0, 1, 1, 0)]
        acc = base
        for _ in range((1 << bits) - 1):
            row.append(acc)
            acc = _point_add(acc, base)
        table.append(row)
        base = acc  # 2^bits * previous window base
    return table


def _point_mul_table(s: int, table: list[list[_Point]], bits: int,
                     mask: int) -> _Point:
    """``s * P`` through ``P``'s window table, addition formulas inlined.

    The accumulator lives in four locals instead of a tuple, and the first
    non-zero window is copied instead of added to the identity; both are
    representation-level shortcuts that leave the projective value (and hence
    every compressed byte) unchanged.
    """
    p = _p
    d2 = _d2
    X1 = 0
    Y1 = 1
    Z1 = 1
    T1 = 0
    started = False
    window = 0
    while s > 0:
        w = s & mask
        if w:
            X2, Y2, Z2, T2 = table[window][w]
            if started:
                A = (Y1 - X1) * (Y2 - X2) % p
                B = (Y1 + X1) * (Y2 + X2) % p
                C = T1 * d2 % p * T2 % p
                D = 2 * Z1 * Z2 % p
                E = B - A
                F = D - C
                G = D + C
                H = B + A
                X1 = E * F % p
                Y1 = G * H % p
                Z1 = F * G % p
                T1 = E * H % p
            else:
                X1, Y1, Z1, T1 = X2, Y2, Z2, T2
                started = True
        s >>= bits
        window += 1
    return (X1, Y1, Z1, T1)


# Fixed-base state: table, its window size, and a call counter driving the
# 4-bit → 8-bit promotion.
_BASE_PROMOTE_CALLS = 64
_base_table: list[list[_Point]] | None = None
_base_bits = 0
_base_mask = 0
_base_calls = 0


def _point_mul_base(s: int) -> _Point:
    """``s * G`` through the fixed-base window table."""
    global _base_table, _base_bits, _base_mask, _base_calls
    _base_calls += 1
    if _base_table is None:
        _base_table = _build_table(_G, _WINDOW_BITS)
        _base_bits, _base_mask = _WINDOW_BITS, (1 << _WINDOW_BITS) - 1
    elif _base_bits == 4 and _base_calls >= _BASE_PROMOTE_CALLS:
        _base_table = _build_table(_G, 8)
        _base_bits, _base_mask = 8, 255
    return _point_mul_table(s, _base_table, _base_bits, _base_mask)


# Decompressed-public-point cache: verification decodes the same few signer
# keys over and over, so the extended point (and, for hot keys, a window
# table) is kept per compressed key.  Entries are [point, uses, table, bits,
# mask]; promotion thresholds keep one-shot keys (unit tests, RFC vectors) on
# the plain double-and-add path.
_PK_CACHE_MAX = 1024
_PK_TABLE_USES = 4     # build a 4-bit table after this many multiplications
_PK_TABLE8_USES = 48   # upgrade the table to 8-bit windows
_pk_cache: dict[bytes, list] = {}


def _public_entry(public: bytes) -> list | None:
    entry = _pk_cache.get(public)
    if entry is None:
        A = _point_decompress(public)
        if A is None:
            return None
        if len(_pk_cache) >= _PK_CACHE_MAX:
            _pk_cache.clear()
        entry = [A, 0, None, 0, 0]
        _pk_cache[public] = entry
    return entry


def _mul_public(s: int, entry: list) -> _Point:
    """``s * A`` for a cached public point, through its table once hot."""
    entry[1] += 1
    table = entry[2]
    if table is None:
        if entry[1] < _PK_TABLE_USES:
            return _point_mul(s, entry[0])
        table = _build_table(entry[0], _WINDOW_BITS)
        entry[2], entry[3], entry[4] = table, _WINDOW_BITS, (1 << _WINDOW_BITS) - 1
    elif entry[3] == 4 and entry[1] >= _PK_TABLE8_USES:
        table = _build_table(entry[0], 8)
        entry[2], entry[3], entry[4] = table, 8, 255
    return _point_mul_table(s, table, entry[3], entry[4])


def _point_compress(P: _Point) -> bytes:
    zinv = _inv(P[2])
    x = P[0] * zinv % _p
    y = P[1] * zinv % _p
    return int.to_bytes(y | ((x & 1) << 255), 32, "little")


def _point_decompress(s: bytes) -> _Point | None:
    if len(s) != 32:
        return None
    y = int.from_bytes(s, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    x = _recover_x(y, sign)
    if x is None:
        return None
    return (x, y, 1, x * y % _p)


def _secret_expand(secret: bytes) -> tuple[int, bytes]:
    if len(secret) != SECRET_KEY_SIZE:
        raise ValueError("bad secret key size")
    h = _sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


# Expanded-key cache: the simulation signs many messages under few seeds, so
# the (scalar, prefix, compressed public key) triple is computed once per seed.
_KEY_CACHE_MAX = 1024
_key_cache: dict[bytes, tuple[int, bytes, bytes]] = {}


def _expanded_key(secret: bytes) -> tuple[int, bytes, bytes]:
    cached = _key_cache.get(secret)
    if cached is None:
        a, prefix = _secret_expand(secret)
        cached = (a, prefix, _point_compress(_point_mul_base(a)))
        if len(_key_cache) >= _KEY_CACHE_MAX:
            _key_cache.clear()
        _key_cache[secret] = cached
    return cached


# Accelerator key caches, mirroring _key_cache/_pk_cache for the C objects.
_accel_private_cache: dict[bytes, object] = {}
_accel_public_cache: dict[bytes, object] = {}


def _accel_private(secret: bytes):
    key = _accel_private_cache.get(secret)
    if key is None:
        if len(_accel_private_cache) >= _KEY_CACHE_MAX:
            _accel_private_cache.clear()
        key = _AccelPrivateKey.from_private_bytes(secret)
        _accel_private_cache[secret] = key
    return key


def _accel_public(public: bytes):
    """Loaded public-key object, or ``None`` for undecodable inputs."""
    key = _accel_public_cache.get(public)
    if key is None:
        try:
            key = _AccelPublicKey.from_public_bytes(public)
        except Exception:
            return None
        if len(_accel_public_cache) >= _PK_CACHE_MAX:
            _accel_public_cache.clear()
        _accel_public_cache[public] = key
    return key


def generate_public_key(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    if _ACCEL:
        if len(secret) != SECRET_KEY_SIZE:
            raise ValueError("bad secret key size")
        return _accel_private(secret).public_key().public_bytes_raw()
    return _expanded_key(secret)[2]


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature of ``message`` under ``secret``."""
    if _ACCEL:
        if len(secret) != SECRET_KEY_SIZE:
            raise ValueError("bad secret key size")
        return _accel_private(secret).sign(message)
    a, prefix, A = _expanded_key(secret)
    r = int.from_bytes(_sha512(prefix + message), "little") % _q
    R = _point_compress(_point_mul_base(r))
    h = int.from_bytes(_sha512(R + A + message), "little") % _q
    s = (r + h * a) % _q
    return R + int.to_bytes(s, 32, "little")


def sign_many(secret: bytes, messages: list[bytes]) -> list[bytes]:
    """Sign a batch under one seed: the expanded key is resolved once and the
    per-message loop binds the hot callables locally.  Output bytes are
    identical to ``[sign(secret, m) for m in messages]``."""
    if _ACCEL:
        if len(secret) != SECRET_KEY_SIZE:
            raise ValueError("bad secret key size")
        key_sign = _accel_private(secret).sign
        return [key_sign(message) for message in messages]
    a, prefix, A = _expanded_key(secret)
    sha512 = _sha512
    from_bytes = int.from_bytes
    to_bytes = int.to_bytes
    mul_base = _point_mul_base
    compress = _point_compress
    q = _q
    out: list[bytes] = []
    append = out.append
    for message in messages:
        r = from_bytes(sha512(prefix + message), "little") % q
        R = compress(mul_base(r))
        h = from_bytes(sha512(R + A + message), "little") % q
        append(R + to_bytes((r + h * a) % q, 32, "little"))
    return out


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check a 64-byte signature against a 32-byte public key.  Never raises."""
    if len(public) != PUBLIC_KEY_SIZE or len(signature) != SIGNATURE_SIZE:
        return False
    if _ACCEL:
        key = _accel_public(public)
        if key is None:
            return False
        try:
            key.verify(signature, message)
        except _InvalidSignature:
            return False
        return True
    entry = _public_entry(public)
    if entry is None:
        return False
    Rs = signature[:32]
    R = _point_decompress(Rs)
    if R is None:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _q:
        return False
    h = int.from_bytes(_sha512(Rs + public + message), "little") % _q
    sB = _point_mul_base(s)
    hA = _mul_public(h, entry)
    return _point_equal(sB, _point_add(R, hA))


def verify_many(items: list[tuple[bytes, bytes, bytes]]) -> list[bool]:
    """Verify ``(public, message, signature)`` batches in order.

    Semantically ``[verify(*item) for item in items]``; batching only shares
    the per-key cached state eagerly, it never changes an individual verdict.
    """
    if not _ACCEL:
        return [verify(public, message, signature)
                for public, message, signature in items]
    out: list[bool] = []
    append = out.append
    load = _accel_public
    invalid = _InvalidSignature
    keys: dict[bytes, object] = {}
    for public, message, signature in items:
        key = keys.get(public)
        if key is None:
            if len(public) != PUBLIC_KEY_SIZE:
                append(False)
                continue
            key = load(public)
            if key is None:
                append(False)
                continue
            keys[public] = key
        if len(signature) != SIGNATURE_SIZE:
            append(False)
            continue
        try:
            key.verify(signature, message)
        except invalid:
            append(False)
        else:
            append(True)
    return out
