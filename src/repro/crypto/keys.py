"""Key pairs and the public key infrastructure (PKI).

The system model (paper §2) assumes a deployed PKI: every process has a
private/public key pair and knows everyone else's public key.  The
:class:`PublicKeyInfrastructure` registry models exactly that — registration
happens at deployment time, lookups never fail silently.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import CryptoError


@dataclass(frozen=True)
class KeyPair:
    """A process's signing key pair.

    ``secret`` is a 32-byte seed; ``public`` is the scheme-specific public key
    bytes; ``owner`` is the process identifier the PKI binds the key to.
    """

    owner: str
    secret: bytes = field(repr=False)
    public: bytes

    def __post_init__(self) -> None:
        if not self.owner:
            raise CryptoError("key pair owner must be a non-empty identifier")
        if len(self.secret) != 32:
            raise CryptoError("secret seed must be exactly 32 bytes")
        if not self.public:
            raise CryptoError("public key must not be empty")


def derive_secret_seed(owner: str, deployment_seed: int = 0) -> bytes:
    """Deterministically derive a 32-byte secret seed for ``owner``.

    Real deployments draw keys from an OS CSPRNG; for reproducible simulations
    we derive them from the deployment seed so reruns produce identical
    signatures and transcripts.
    """
    material = f"setchain-key:{deployment_seed}:{owner}".encode()
    return hashlib.sha512(material).digest()[:32]


class PublicKeyInfrastructure:
    """Registry binding process identifiers to public keys.

    Faulty processes cannot impersonate others because verification always
    resolves the public key through this registry by *claimed owner*, so a
    signature made with a different key never verifies.
    """

    def __init__(self) -> None:
        self._keys: dict[str, bytes] = {}

    def register(self, owner: str, public: bytes) -> None:
        """Bind ``owner`` to ``public``.  Re-registering a different key is an error."""
        if not owner:
            raise CryptoError("cannot register an empty owner id")
        existing = self._keys.get(owner)
        if existing is not None and existing != public:
            raise CryptoError(f"owner {owner!r} already registered with a different key")
        self._keys[owner] = public

    def public_key_of(self, owner: str) -> bytes:
        """Public key bound to ``owner``; raises :class:`CryptoError` if unknown."""
        try:
            return self._keys[owner]
        except KeyError:
            raise CryptoError(f"no public key registered for {owner!r}") from None

    def knows(self, owner: str) -> bool:
        return owner in self._keys

    def owners(self) -> list[str]:
        """All registered process identifiers, sorted for determinism."""
        return sorted(self._keys)

    def __len__(self) -> int:
        return len(self._keys)
