"""Canonical hashing used throughout the Setchain algorithms.

The paper hashes (i) batches of elements, to form Hashchain hash-batches, and
(ii) ``(epoch_number, epoch_elements)`` pairs, to form epoch-proofs
(``p_v(i) = Sign_v(Hash(i, history[i]))``).  Epochs are *sets*, so the hash
must not depend on the order servers happened to receive elements; we sort the
canonical encodings before hashing, which also matches the paper's observation
(Appendix G) that implementations impose a deterministic internal order.

The canonical encodings themselves are cached on the objects
(``Element``/``EpochProof``/``HashBatch`` compute ``canonical_bytes()`` once
at construction), so hashing a batch is a sort of precomputed byte strings
plus one SHA-512 pass — the encode step is never repeated per server or per
epoch.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


def sha512_hex(data: bytes) -> str:
    """Hex-encoded SHA-512 of ``data`` (the paper's hash function, FIPS 180-4)."""
    return hashlib.sha512(data).hexdigest()


def hash_bytes(data: bytes) -> bytes:
    """Raw SHA-512 digest of ``data``."""
    return hashlib.sha512(data).digest()


def _canonical_item(item: object) -> bytes:
    """Stable byte encoding of a batch/epoch item.

    Supports the payload types that flow through the algorithms: bytes,
    strings, and objects exposing ``canonical_bytes()`` (elements and
    epoch-proofs).
    """
    canonical = getattr(item, "canonical_bytes", None)
    if callable(canonical):
        return canonical()
    if isinstance(item, bytes):
        return item
    if isinstance(item, str):
        return item.encode()
    return repr(item).encode()


def canonical_bytes_of(item: object) -> bytes:
    """Public alias of the canonical item encoding (used by compressors too)."""
    return _canonical_item(item)


def canonical_many(items: Iterable[object]) -> list[bytes]:
    """Canonical encodings of a whole batch in one pass.

    Elements, epoch-proofs, and hash-batches all precompute their encoding in
    a ``_canonical`` attribute; reading it directly skips a bound-method call
    per item, which adds up over million-element flushes.  Anything else goes
    through the generic :func:`canonical_bytes_of` dispatch.
    """
    return [getattr(item, "_canonical", None) or _canonical_item(item)
            for item in items]


def _length_framed(encoded: list[bytes]) -> bytes:
    """Length-prefixed concatenation of already-sorted canonical encodings.

    Joining once and hashing the single buffer produces the same byte stream
    as updating the hasher blob by blob, with one C call instead of 2N.
    """
    parts = [len(encoded).to_bytes(8, "big")]
    extend = parts.extend
    for blob in encoded:
        extend((len(blob).to_bytes(8, "big"), blob))
    return b"".join(parts)


def hash_batch(items: Iterable[object]) -> str:
    """Order-independent SHA-512 hash of a batch of items."""
    hasher = hashlib.sha512()
    hasher.update(_length_framed(sorted(canonical_many(items))))
    return hasher.hexdigest()


def hash_epoch(epoch_number: int, elements: Iterable[object]) -> str:
    """SHA-512 hash of ``(epoch_number, elements)`` — the value epoch-proofs sign."""
    hasher = hashlib.sha512()
    hasher.update(b"epoch:")
    hasher.update(int(epoch_number).to_bytes(8, "big"))
    hasher.update(_length_framed(sorted(canonical_many(elements))))
    return hasher.hexdigest()
