"""Sharded multi-Setchain scale-out: one logical set over N instances.

A sharded deployment runs ``shards`` independent Setchain instances — each a
multi-tenant :func:`~repro.core.deployment.Deployment.algorithm_groups`
tenant over the shared ledger — and hash-partitions the element space across
them at the client/workload layer.  :class:`~repro.shard.router.ShardRouter`
owns the partition function and the backpressure accounting; the per-shard
commit/skew metrics surface as ``RunResult.shards``.
"""

from .router import SHARD_GROUP_SEPARATOR, ShardRouter, shard_group, shard_slot

__all__ = ["SHARD_GROUP_SEPARATOR", "ShardRouter", "shard_group", "shard_slot"]
