"""The deterministic shard router: element-id hash partitioning + failover.

Partition function
------------------
:func:`shard_slot` is a Fibonacci multiplicative hash (64-bit golden-ratio
multiplier, xor-folded) over the element id.  Element ids are sequential
integers, so a plain modulo would stripe them perfectly evenly and hide the
skew machinery; the multiplicative mix gives a pseudo-uniform assignment with
*measurable* per-shard imbalance, which ``RunResult.shards["skew_ratio"]``
reports.

Elasticity
----------
The router hashes over the currently *active* shards — those with at least a
commit quorum of routable members (not crashed, draining, departed, or
bootstrapping).  A shard added under load starts taking traffic the moment a
quorum of its joiners has caught up; a shard being drained (or lost to
crashes) stops receiving new elements immediately while its in-flight
elements finish committing on the remaining drain-capable members.  An
element's shard is therefore fixed at *admission*, never re-balanced — which
is what keeps the per-shard sets disjoint and the merged logical view a true
partition.

Backpressure vocabulary (PR 6): an element routed to its preferred server is
*accepted*; re-pointed at another live server in the same shard it is
*deferred*; with no active shard at all it is *rejected* (dropped, counted).
"""

from __future__ import annotations

from typing import Any, Sequence

#: 64-bit golden-ratio multiplier (Fibonacci hashing).
_MIX = 0x9E3779B97F4A7C15
_MASK = 0xFFFFFFFFFFFFFFFF

#: Separator between an algorithm name and its shard suffix in the
#: multi-tenant group key (``hashchain#shard0``).  ``#`` cannot appear in an
#: algorithm name (the registry validates identifiers), so the suffix can be
#: split off unambiguously.
SHARD_GROUP_SEPARATOR = "#shard"


def shard_slot(element_id: int, n_slots: int) -> int:
    """Deterministic slot in ``range(n_slots)`` for an element id."""
    if n_slots <= 1:
        return 0
    mixed = (element_id * _MIX) & _MASK
    mixed ^= mixed >> 29
    return mixed % n_slots


def shard_group(algorithm: str, shard_index: int | None) -> str:
    """The multi-tenant group key for one shard of an algorithm."""
    if shard_index is None:
        return algorithm
    return f"{algorithm}{SHARD_GROUP_SEPARATOR}{shard_index}"


def _routable(server: Any) -> bool:
    """Can this server accept a brand-new element right now?"""
    return not (server.crashed or server.draining or server.departed
                or server.bootstrapping)


class ShardRouter:
    """Routes elements to shards; owns the admission-control counters.

    The router holds the authoritative shard membership (``shard_servers[k]``
    is the server list of shard ``k``; retired servers stay listed but stop
    being routable) and is shared by the batch workload clients and the
    service ingress drain.
    """

    def __init__(self, shard_servers: Sequence[Sequence[Any]],
                 quorum: int) -> None:
        self.shard_servers: list[list[Any]] = [list(s) for s in shard_servers]
        self.quorum = quorum
        #: Admission counters (PR 6 vocabulary — see the module docstring).
        self.routed = 0
        self.deferred = 0
        self.rejected = 0
        self.per_shard_routed: list[int] = [0] * len(self.shard_servers)
        self._rr: list[int] = [0] * len(self.shard_servers)

    # -- membership ---------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shard_servers)

    def shard_of(self, server_name: str) -> int | None:
        """The shard a server belongs to, or ``None`` for unknown names."""
        for index, servers in enumerate(self.shard_servers):
            if any(s.name == server_name for s in servers):
                return index
        return None

    def shard_map(self) -> dict[str, int]:
        """``server name -> shard index`` over every server ever enrolled."""
        return {server.name: index
                for index, servers in enumerate(self.shard_servers)
                for server in servers}

    def add_server(self, shard_index: int, server: Any) -> None:
        """Enroll a joiner; ``shard_index == n_shards`` opens a new shard."""
        while shard_index >= len(self.shard_servers):
            self.shard_servers.append([])
            self.per_shard_routed.append(0)
            self._rr.append(0)
        self.shard_servers[shard_index].append(server)

    def placement_for_join(self, per_shard_size: int) -> int:
        """Shard for the next joiner: fill the smallest under-sized shard
        first (deterministic: lowest index wins ties), else open a new one."""
        sizes = [sum(1 for s in servers if not s.departed)
                 for servers in self.shard_servers]
        candidates = [(size, index) for index, size in enumerate(sizes)
                      if size < per_shard_size]
        if candidates:
            return min(candidates)[1]
        return len(self.shard_servers)

    # -- routing ------------------------------------------------------------------

    def active_shards(self) -> list[int]:
        """Shards currently taking new elements: quorum-many routable members."""
        return [index for index, servers in enumerate(self.shard_servers)
                if sum(1 for s in servers if _routable(s)) >= self.quorum]

    def shard_for(self, element_id: int,
                  active: Sequence[int] | None = None) -> int | None:
        """The owning shard for a new element, or ``None`` if none is active."""
        if active is None:
            active = self.active_shards()
        if not active:
            return None
        return active[shard_slot(element_id, len(active))]

    def route(self, element_id: int, preference: int = 0) -> tuple[Any, int] | None:
        """Pick ``(server, shard)`` for one element; count the admission.

        ``preference`` selects the within-shard position the caller would
        normally hit (the batch workload pins client *i* to position
        ``i % shard size``, mirroring the unsharded one-client-per-server
        layout); an unroutable preferred server fails over to the next
        routable one in the same shard and counts as *deferred*.  Returns
        ``None`` — and counts a rejection — when no shard is active.
        """
        shard = self.shard_for(element_id)
        if shard is None:
            self.rejected += 1
            return None
        servers = self.shard_servers[shard]
        start = preference % len(servers)
        for offset in range(len(servers)):
            candidate = servers[(start + offset) % len(servers)]
            if _routable(candidate):
                self.routed += 1
                self.per_shard_routed[shard] += 1
                if offset:
                    self.deferred += 1
                return candidate, shard
        # The shard passed the active check yet every member refused: it lost
        # its last routable member between the two looks.  Treat as rejected.
        self.rejected += 1
        return None

    def route_round_robin(self, element_id: int) -> tuple[Any, int] | None:
        """Service-ingress variant: per-shard round-robin instead of a pinned
        preference (the ingress queue has no per-client affinity)."""
        shard = self.shard_for(element_id)
        if shard is None:
            self.rejected += 1
            return None
        result = self.route(element_id, preference=self._rr[shard])
        if result is not None:
            self._rr[shard] += 1
        return result

    # -- reporting ----------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {"routed": self.routed, "deferred": self.deferred,
                "rejected": self.rejected}

    def skew_ratio(self) -> float | None:
        """max/mean of per-shard admissions (1.0 = perfectly even), or
        ``None`` before any element was routed."""
        if self.routed == 0 or not self.per_shard_routed:
            return None
        mean = self.routed / len(self.per_shard_routed)
        return round(max(self.per_shard_routed) / mean, 4) if mean else None
