"""Setuptools entry point.

The offline evaluation environment has no ``wheel`` package, so the project
keeps a classic ``setup.py`` to allow legacy editable installs
(``pip install -e . --no-build-isolation``) without building a PEP 660 wheel.
All metadata lives in ``pyproject.toml``; this file only triggers setuptools.
"""

from setuptools import setup

setup()
